//! Multiple-testing corrections for batteries of hypothesis tests.
//!
//! The Section-3.4 merge pass runs `O(d²)` pairwise tests per public
//! attribute; at significance 0.05 a 77-value attribute yields thousands
//! of tests and dozens of expected false rejections. The paper relies on
//! connected components to absorb them; a production deployment may
//! instead want a corrected significance. Bonferroni and
//! Benjamini–Hochberg are provided.

/// Bonferroni-corrected per-test significance for `tests` tests at
/// family-wise level `alpha`: `alpha / tests`.
///
/// # Panics
///
/// Panics if `tests == 0` or `alpha` outside `(0, 1)`.
pub fn bonferroni_alpha(alpha: f64, tests: usize) -> f64 {
    assert!(tests > 0, "need at least one test");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "alpha must lie in (0, 1), got {alpha}"
    );
    alpha / tests as f64
}

/// Benjamini–Hochberg step-up procedure: given p-values, returns a boolean
/// per input marking the hypotheses *rejected* at false-discovery rate
/// `q`.
///
/// # Panics
///
/// Panics if `q` is outside `(0, 1)` or any p-value is outside `[0, 1]`.
pub fn benjamini_hochberg(p_values: &[f64], q: f64) -> Vec<bool> {
    assert!(q > 0.0 && q < 1.0, "FDR level must lie in (0, 1), got {q}");
    for &p in p_values {
        assert!((0.0..=1.0).contains(&p), "p-value {p} outside [0, 1]");
    }
    let n = p_values.len();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        p_values[a]
            .partial_cmp(&p_values[b])
            .expect("p-values are comparable")
    });
    // Largest k with p_(k) <= k/n * q (1-based k).
    let mut cutoff = None;
    for (rank, &idx) in order.iter().enumerate() {
        let threshold = (rank + 1) as f64 / n as f64 * q;
        if p_values[idx] <= threshold {
            cutoff = Some(rank);
        }
    }
    let mut reject = vec![false; n];
    if let Some(k) = cutoff {
        for &idx in &order[..=k] {
            reject[idx] = true;
        }
    }
    reject
}

/// Expected number of false rejections when running `tests` independent
/// true-null tests at per-test significance `alpha` — the quantity that
/// motivates correcting the merge pass.
pub fn expected_false_rejections(alpha: f64, tests: usize) -> f64 {
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "alpha must lie in (0, 1), got {alpha}"
    );
    alpha * tests as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bonferroni_divides() {
        assert!((bonferroni_alpha(0.05, 10) - 0.005).abs() < 1e-12);
        assert!((bonferroni_alpha(0.05, 1) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn bh_rejects_obvious_signals_keeps_nulls() {
        // Three tiny p-values among uniform-ish nulls.
        let p = [0.0001, 0.0002, 0.0005, 0.3, 0.5, 0.7, 0.9, 0.95];
        let reject = benjamini_hochberg(&p, 0.05);
        assert_eq!(&reject[..3], &[true, true, true]);
        assert!(!reject[3..].iter().any(|&r| r));
    }

    #[test]
    fn bh_rejects_nothing_when_all_null() {
        let p = [0.2, 0.4, 0.6, 0.8];
        assert!(!benjamini_hochberg(&p, 0.05).iter().any(|&r| r));
    }

    #[test]
    fn bh_rejects_everything_when_all_tiny() {
        let p = [1e-8, 1e-9, 1e-7];
        assert!(benjamini_hochberg(&p, 0.05).iter().all(|&r| r));
    }

    #[test]
    fn bh_step_up_includes_borderline_below_cutoff() {
        // Classic property: a p-value above its own threshold is still
        // rejected if a later (larger-rank) one passes.
        // n = 4, q = 0.2: thresholds 0.05, 0.10, 0.15, 0.20.
        let p = [0.06, 0.09, 0.12, 0.35];
        let reject = benjamini_hochberg(&p, 0.2);
        // p_(3) = 0.12 <= 0.15, so ranks 1..3 are all rejected even though
        // p_(1) = 0.06 > 0.05.
        assert_eq!(reject, vec![true, true, true, false]);
    }

    #[test]
    fn bh_empty_input() {
        assert!(benjamini_hochberg(&[], 0.05).is_empty());
    }

    #[test]
    fn bh_is_monotone_in_q() {
        let p = [0.01, 0.04, 0.2, 0.6];
        let strict: usize = benjamini_hochberg(&p, 0.01).iter().filter(|&&r| r).count();
        let loose: usize = benjamini_hochberg(&p, 0.2).iter().filter(|&&r| r).count();
        assert!(loose >= strict);
    }

    #[test]
    fn expected_false_rejections_scales() {
        // The CENSUS age attribute: C(77, 2) = 2926 pairs at 0.05.
        let expected = expected_false_rejections(0.05, 2926);
        assert!((expected - 146.3).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "p-value")]
    fn bh_rejects_bad_pvalue() {
        benjamini_hochberg(&[1.5], 0.05);
    }
}
