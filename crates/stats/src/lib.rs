//! # rp-stats
//!
//! Statistics substrate for the reconstruction-privacy workspace, the Rust
//! reproduction of *Reconstruction Privacy: Enabling Statistical Learning*
//! (Wang, Han, Fu, Wong, Yu — EDBT 2015).
//!
//! The paper leans on a small but precise statistical toolkit, all of which
//! is implemented here from scratch:
//!
//! * [`special`] — log-gamma, regularized incomplete gamma, erf/erfc.
//! * [`chi2`] — the χ² distribution and the unequal-totals two-binned test of
//!   Equation 4 (used to merge public-attribute values in Section 3.4).
//! * [`dist`] — Laplace, Gaussian and two-sided-geometric noise samplers used
//!   by the differential-privacy baseline and the analysis of Section 2.
//! * [`bounds`] — Markov/Chebyshev/Hoeffding and the simplified Chernoff
//!   bounds of Theorem 3, the backbone of the privacy test.
//! * [`ratio`] — Taylor moments of a ratio of noisy counts (Lemma 1) and the
//!   Laplace disclosure indicator `2(b/x)²` (Corollary 2, Table 2).
//! * [`sampling`] — categorical/binomial/multinomial sampling and stochastic
//!   rounding used by the perturbation operators and SPS.
//! * [`summary`] — Welford streaming mean/variance/standard-error and the
//!   relative-error utility measure of Section 6.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounds;
pub mod chi2;
pub mod dist;
pub mod gtest;
pub mod multiple;
pub mod ratio;
pub mod sampling;
pub mod special;
pub mod summary;

pub use bounds::{chernoff_lower, chernoff_pair, chernoff_upper};
pub use chi2::{binned_chi2_test, BinnedTestResult, ChiSquared};
pub use dist::{Gaussian, Laplace, TwoSidedGeometric};
pub use gtest::binned_g_test;
pub use ratio::{laplace_disclosure_indicator, laplace_ratio_bounds, ratio_moments, RatioMoments};
pub use summary::{mean_and_se, relative_error, OnlineStats};
