//! Upper bounds on tail probabilities of sums of independent Poisson trials.
//!
//! Reconstruction privacy (Definition 3) is phrased in terms of the *best
//! known upper bound* on the relative-error tails of the reconstructed
//! frequency. Theorem 2 reduces those tails to the tails of the observed
//! count `O*`, which is a sum of independent (non-identical) Bernoulli
//! trials, so the classical bound literature applies. This module provides
//! Markov, Chebyshev, Hoeffding and — the one the paper adopts — the
//! simplified Chernoff bounds of Theorem 3.

/// Chernoff upper-tail bound (Theorem 3, Equation 5):
/// `Pr[(X − µ)/µ > ω] < exp(−ω²µ / (2 + ω))` for `ω ∈ (0, ∞)`.
///
/// # Panics
///
/// Panics if `omega <= 0` or `mu < 0`.
pub fn chernoff_upper(omega: f64, mu: f64) -> f64 {
    assert!(
        omega > 0.0,
        "Chernoff upper bound needs omega > 0, got {omega}"
    );
    assert!(mu >= 0.0, "mean must be non-negative, got {mu}");
    (-(omega * omega * mu) / (2.0 + omega)).exp()
}

/// Chernoff lower-tail bound (Theorem 3, Equation 6):
/// `Pr[(X − µ)/µ < −ω] < exp(−ω²µ / 2)` for `ω ∈ (0, 1]`.
///
/// # Panics
///
/// Panics if `omega` is outside `(0, 1]` or `mu < 0`.
pub fn chernoff_lower(omega: f64, mu: f64) -> f64 {
    assert!(
        omega > 0.0 && omega <= 1.0,
        "Chernoff lower bound needs omega in (0, 1], got {omega}"
    );
    assert!(mu >= 0.0, "mean must be non-negative, got {mu}");
    (-(omega * omega * mu) / 2.0).exp()
}

/// Markov's inequality for a non-negative variable:
/// `Pr[X > a] <= E[X]/a`, clamped to 1.
///
/// # Panics
///
/// Panics if `a <= 0` or `mean < 0`.
pub fn markov(mean: f64, a: f64) -> f64 {
    assert!(a > 0.0, "Markov threshold must be positive, got {a}");
    assert!(mean >= 0.0, "mean must be non-negative, got {mean}");
    (mean / a).min(1.0)
}

/// Chebyshev's inequality: `Pr[|X − µ| >= k·σ] <= 1/k²`, clamped to 1.
///
/// # Panics
///
/// Panics if `k <= 0`.
pub fn chebyshev(k: f64) -> f64 {
    assert!(k > 0.0, "Chebyshev multiple must be positive, got {k}");
    (1.0 / (k * k)).min(1.0)
}

/// Hoeffding's inequality for `n` independent trials bounded in `[0, 1]`:
/// `Pr[X − E[X] >= t·n] <= exp(−2·n·t²)` (one-sided, in fraction `t`).
///
/// # Panics
///
/// Panics if `n == 0` or `t <= 0`.
pub fn hoeffding(n: u64, t: f64) -> f64 {
    assert!(n > 0, "Hoeffding needs at least one trial");
    assert!(t > 0.0, "Hoeffding deviation must be positive, got {t}");
    (-2.0 * n as f64 * t * t).exp()
}

/// The pair of simplified Chernoff bounds `(U, L)` used throughout the paper,
/// evaluated at the same `(ω, µ)`.
///
/// `L` is `None` when `ω > 1` (Equation 6 does not apply there).
pub fn chernoff_pair(omega: f64, mu: f64) -> (f64, Option<f64>) {
    let upper = chernoff_upper(omega, mu);
    let lower = if omega <= 1.0 {
        Some(chernoff_lower(omega, mu))
    } else {
        None
    };
    (upper, lower)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn chernoff_upper_decreases_in_mu_and_omega() {
        assert!(chernoff_upper(0.3, 100.0) > chernoff_upper(0.3, 1000.0));
        assert!(chernoff_upper(0.2, 500.0) > chernoff_upper(0.4, 500.0));
    }

    #[test]
    fn chernoff_lower_tighter_than_upper_on_shared_range() {
        // For ω ∈ (0, 1], exp(−ω²µ/2) < exp(−ω²µ/(2+ω)): L < U always
        // (up to f64 underflow to 0 when both exponents are below ~−745).
        for &omega in &[0.1, 0.5, 1.0] {
            for &mu in &[1.0, 50.0, 5000.0] {
                let (l, u) = (chernoff_lower(omega, mu), chernoff_upper(omega, mu));
                if u > 0.0 {
                    assert!(l < u, "L={l} not below U={u} at omega={omega}, mu={mu}");
                } else {
                    assert_eq!(l, 0.0);
                }
            }
        }
    }

    #[test]
    fn chernoff_exact_values() {
        let u = chernoff_upper(1.0, 3.0);
        assert!((u - (-1.0f64).exp()).abs() < 1e-12);
        let l = chernoff_lower(1.0, 4.0);
        assert!((l - (-2.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn chernoff_bounds_hold_against_monte_carlo_binomial() {
        // X ~ Binomial(n, q) is a sum of Poisson trials; the bounds must
        // dominate the empirical tails.
        let mut rng = StdRng::seed_from_u64(17);
        let n = 2000_u64;
        let q = 0.3_f64;
        let mu = n as f64 * q;
        let trials = 20_000;
        for &omega in &[0.05_f64, 0.1, 0.2] {
            let mut upper_hits = 0u64;
            let mut lower_hits = 0u64;
            for _ in 0..trials {
                let x: u64 = (0..n).filter(|_| rng.gen::<f64>() < q).count() as u64;
                let rel = (x as f64 - mu) / mu;
                if rel > omega {
                    upper_hits += 1;
                }
                if rel < -omega {
                    lower_hits += 1;
                }
            }
            let emp_upper = upper_hits as f64 / trials as f64;
            let emp_lower = lower_hits as f64 / trials as f64;
            assert!(
                emp_upper <= chernoff_upper(omega, mu),
                "omega={omega}: empirical {emp_upper} > bound {}",
                chernoff_upper(omega, mu)
            );
            assert!(
                emp_lower <= chernoff_lower(omega, mu),
                "omega={omega}: empirical {emp_lower} > bound {}",
                chernoff_lower(omega, mu)
            );
        }
    }

    #[test]
    fn markov_and_chebyshev_clamp_to_one() {
        assert_eq!(markov(10.0, 5.0), 1.0);
        assert_eq!(chebyshev(0.5), 1.0);
        assert!((markov(2.0, 10.0) - 0.2).abs() < 1e-12);
        assert!((chebyshev(2.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hoeffding_decreases_in_n() {
        assert!(hoeffding(100, 0.1) > hoeffding(1000, 0.1));
    }

    #[test]
    fn chernoff_pair_drops_lower_beyond_one() {
        let (_, l) = chernoff_pair(1.5, 100.0);
        assert!(l.is_none());
        let (_, l) = chernoff_pair(0.9, 100.0);
        assert!(l.is_some());
    }

    #[test]
    #[should_panic(expected = "omega in (0, 1]")]
    fn chernoff_lower_rejects_omega_above_one() {
        chernoff_lower(1.01, 10.0);
    }

    #[test]
    #[should_panic(expected = "omega > 0")]
    fn chernoff_upper_rejects_zero_omega() {
        chernoff_upper(0.0, 10.0);
    }
}
