//! Streaming summary statistics (Welford's online algorithm) and the
//! mean / standard-error reporting used by the paper's Table 1.

/// Numerically stable streaming accumulator for mean and variance.
///
/// Uses Welford's algorithm, so it is safe for long runs of observations with
/// large offsets (e.g. noisy counts in the hundreds with sub-unit spread).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `None` when no observations were added.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Unbiased sample variance (denominator `n − 1`); `None` for fewer than
    /// two observations.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Population variance (denominator `n`); `None` when empty.
    pub fn population_variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Sample standard deviation; `None` for fewer than two observations.
    pub fn sample_sd(&self) -> Option<f64> {
        self.sample_variance().map(f64::sqrt)
    }

    /// Standard error of the mean, `s / √n`, as reported in the paper's
    /// Table 1; `None` for fewer than two observations.
    pub fn standard_error(&self) -> Option<f64> {
        self.sample_sd().map(|sd| sd / (self.count as f64).sqrt())
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

/// Mean and standard error of a slice, convenience wrapper over
/// [`OnlineStats`]. Returns `(mean, standard_error)`; the standard error is
/// zero for a single observation.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn mean_and_se(values: &[f64]) -> (f64, f64) {
    assert!(
        !values.is_empty(),
        "mean_and_se requires at least one value"
    );
    let mut stats = OnlineStats::new();
    for &v in values {
        stats.push(v);
    }
    (stats.mean().unwrap(), stats.standard_error().unwrap_or(0.0))
}

/// Relative error `|estimate − actual| / actual`, the utility measure of
/// Section 6.
///
/// # Panics
///
/// Panics if `actual == 0`.
pub fn relative_error(estimate: f64, actual: f64) -> f64 {
    assert!(actual != 0.0, "relative error undefined for actual == 0");
    (estimate - actual).abs() / actual.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn empty_accumulator_returns_none() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.sample_variance(), None);
        assert_eq!(s.standard_error(), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn single_value_has_mean_but_no_variance() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), Some(42.0));
        assert_eq!(s.sample_variance(), None);
        assert_eq!(s.population_variance(), Some(0.0));
    }

    #[test]
    fn known_small_sample() {
        let mut s = OnlineStats::new();
        for &x in &[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_close(s.mean().unwrap(), 5.0, 1e-12);
        assert_close(s.population_variance().unwrap(), 4.0, 1e-12);
        assert_close(s.sample_variance().unwrap(), 32.0 / 7.0, 1e-12);
        assert_close(
            s.standard_error().unwrap(),
            (32.0 / 7.0f64).sqrt() / (8.0f64).sqrt(),
            1e-12,
        );
    }

    #[test]
    fn welford_stable_under_large_offset() {
        let mut s = OnlineStats::new();
        let offset = 1e9;
        for &x in &[offset + 1.0, offset + 2.0, offset + 3.0] {
            s.push(x);
        }
        assert_close(s.mean().unwrap(), offset + 2.0, 1e-3);
        assert_close(s.sample_variance().unwrap(), 1.0, 1e-6);
    }

    #[test]
    fn merge_matches_sequential() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut sequential = OnlineStats::new();
        for &v in &values {
            sequential.push(v);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &v in &values[..37] {
            left.push(v);
        }
        for &v in &values[37..] {
            right.push(v);
        }
        left.merge(&right);
        assert_eq!(left.count(), sequential.count());
        assert_close(left.mean().unwrap(), sequential.mean().unwrap(), 1e-10);
        assert_close(
            left.sample_variance().unwrap(),
            sequential.sample_variance().unwrap(),
            1e-10,
        );
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(3.0);
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn mean_and_se_matches_accumulator() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let (mean, se) = mean_and_se(&values);
        assert_close(mean, 2.5, 1e-12);
        let expected_se = (5.0 / 3.0f64).sqrt() / 2.0;
        assert_close(se, expected_se, 1e-12);
    }

    #[test]
    fn relative_error_examples() {
        assert_close(relative_error(110.0, 100.0), 0.1, 1e-12);
        assert_close(relative_error(90.0, 100.0), 0.1, 1e-12);
        assert_close(relative_error(100.0, 100.0), 0.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "actual == 0")]
    fn relative_error_rejects_zero_actual() {
        relative_error(1.0, 0.0);
    }
}
