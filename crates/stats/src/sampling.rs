//! Discrete sampling utilities: weighted categorical draws, a binomial
//! sampler and stochastic rounding.
//!
//! These back the histogram-level fast path of the perturbation operator
//! (ablation #3 in DESIGN.md) and the fractional record picks of the SPS
//! Sampling/Scaling steps.

use rand::Rng;

/// Samples an index from a discrete distribution given by non-negative
/// weights, by linear inversion.
///
/// # Panics
///
/// Panics if `weights` is empty, contains a negative or non-finite weight, or
/// sums to zero.
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let mut total = 0.0;
    for &w in weights {
        assert!(
            w >= 0.0 && w.is_finite(),
            "weights must be non-negative and finite, got {w}"
        );
        total += w;
    }
    assert!(total > 0.0, "weights must not all be zero");
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    // Floating-point slack can walk past the end; the last positive weight
    // is the correct fallback.
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        .expect("at least one positive weight exists")
}

/// Below this (mirrored) success probability the waiting-time strategy of
/// [`sample_binomial`] beats direct Bernoulli summation; see its docs.
pub const WAITING_TIME_MAX_Q: f64 = 0.1;

/// Draws `X ~ Binomial(n, q)`.
///
/// Uses direct Bernoulli summation unless the (mirrored) probability is
/// genuinely small, where geometric waiting-time inversion wins: both loops
/// are `O(n)` worst case, but a waiting-time step costs an `ln()` (~15× a
/// branchless Bernoulli trial) and only performs `n·q + 1` of them, so it
/// pays off below `q ≈` [`WAITING_TIME_MAX_Q`]. All paths are exact (no
/// normal approximation), which keeps distribution-level tests honest.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn sample_binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, q: f64) -> u64 {
    assert!(
        (0.0..=1.0).contains(&q),
        "probability must lie in [0, 1], got {q}"
    );
    if q == 0.0 || n == 0 {
        return 0;
    }
    if q == 1.0 {
        return n;
    }
    // Work with q <= 1/2 and mirror at the end.
    let (q, mirrored) = if q > 0.5 { (1.0 - q, true) } else { (q, false) };
    let x = if n <= 64 || q >= WAITING_TIME_MAX_Q {
        // Branchless accumulation: the comparison against a random uniform
        // is unpredictable by construction, so summing the 0/1 outcome
        // avoids one guaranteed-hostile branch per trial. Identical draws,
        // identical result.
        (0..n).map(|_| u64::from(rng.gen::<f64>() < q)).sum()
    } else {
        // Geometric waiting-time inversion: expected iterations n·q + 1.
        let log1mq = (1.0 - q).ln();
        let mut count = 0u64;
        let mut skipped = 0u64;
        loop {
            let u: f64 = loop {
                let u: f64 = rng.gen();
                if u > f64::MIN_POSITIVE {
                    break u;
                }
            };
            let gap = (u.ln() / log1mq).floor() as u64;
            if skipped + gap >= n {
                break;
            }
            skipped += gap + 1;
            count += 1;
            if skipped >= n {
                break;
            }
        }
        count
    };
    if mirrored {
        n - x
    } else {
        x
    }
}

/// Draws a multinomial sample: `n` items distributed over categories with
/// probabilities `probs` (which must sum to ~1).
///
/// Implemented by conditional binomials, so it is exact and `O(k)` binomial
/// draws for `k` categories.
///
/// # Panics
///
/// Panics if `probs` is empty, has negative entries, or sums to something
/// farther than 1e-9 from 1.
pub fn sample_multinomial<R: Rng + ?Sized>(rng: &mut R, n: u64, probs: &[f64]) -> Vec<u64> {
    assert!(!probs.is_empty(), "probability vector must be non-empty");
    let total: f64 = probs.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "probabilities must sum to 1, got {total}"
    );
    let mut counts = Vec::with_capacity(probs.len());
    let mut remaining_n = n;
    let mut remaining_p = 1.0;
    for (i, &p) in probs.iter().enumerate() {
        assert!(p >= 0.0, "probabilities must be non-negative, got {p}");
        if i + 1 == probs.len() {
            counts.push(remaining_n);
            break;
        }
        if remaining_n == 0 || remaining_p <= 0.0 {
            counts.push(0);
            continue;
        }
        let cond = (p / remaining_p).clamp(0.0, 1.0);
        let c = sample_binomial(rng, remaining_n, cond);
        counts.push(c);
        remaining_n -= c;
        remaining_p -= p;
    }
    counts
}

/// Stochastic rounding of a non-negative real target count: returns
/// `floor(x)` plus one more with probability `frac(x)`.
///
/// This is exactly the "pick one additional record with probability
/// `|g_sa|·τ − ⌊|g_sa|·τ⌋`" device of the SPS Sampling and Scaling steps.
///
/// # Panics
///
/// Panics if `x` is negative or not finite.
pub fn stochastic_round<R: Rng + ?Sized>(rng: &mut R, x: f64) -> u64 {
    assert!(
        x >= 0.0 && x.is_finite(),
        "stochastic_round needs finite x >= 0, got {x}"
    );
    let base = x.floor();
    let frac = x - base;
    let extra = u64::from(frac > 0.0 && rng.gen::<f64>() < frac);
    base as u64 + extra
}

/// Reservoir-free sampling of exactly `k` distinct indices out of `0..n`
/// using Floyd's algorithm; order is unspecified.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} items from {n}");
    let mut chosen = std::collections::HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    for j in n - k..n {
        let t = rng.gen_range(0..=j);
        if chosen.insert(t) {
            out.push(t);
        } else {
            chosen.insert(j);
            out.push(j);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn weighted_sampling_matches_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = [1.0, 3.0, 6.0];
        let n = 60_000;
        let mut counts = [0u64; 3];
        for _ in 0..n {
            counts[sample_weighted(&mut rng, &weights)] += 1;
        }
        assert_close(counts[0] as f64 / n as f64, 0.1, 0.01);
        assert_close(counts[1] as f64 / n as f64, 0.3, 0.01);
        assert_close(counts[2] as f64 / n as f64, 0.6, 0.01);
    }

    #[test]
    fn weighted_sampling_skips_zero_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let i = sample_weighted(&mut rng, &[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn weighted_sampling_rejects_all_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        sample_weighted(&mut rng, &[0.0, 0.0]);
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 1.0), 100);
    }

    #[test]
    fn binomial_moments_small_and_large_n() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(n, q) in &[(40u64, 0.3f64), (5000, 0.02), (5000, 0.9), (200, 0.5)] {
            let trials = 20_000;
            let mut sum = 0.0;
            let mut sumsq = 0.0;
            for _ in 0..trials {
                let x = sample_binomial(&mut rng, n, q) as f64;
                assert!(x <= n as f64);
                sum += x;
                sumsq += x * x;
            }
            let mean = sum / trials as f64;
            let var = sumsq / trials as f64 - mean * mean;
            let expect_mean = n as f64 * q;
            let expect_var = n as f64 * q * (1.0 - q);
            assert_close(
                mean,
                expect_mean,
                4.0 * (expect_var / trials as f64).sqrt() + 0.05,
            );
            assert_close(var, expect_var, 0.08 * expect_var + 0.1);
        }
    }

    #[test]
    fn multinomial_totals_and_moments() {
        let mut rng = StdRng::seed_from_u64(8);
        let probs = [0.5, 0.2, 0.2, 0.1];
        let n = 10_000u64;
        let counts = sample_multinomial(&mut rng, n, &probs);
        assert_eq!(counts.iter().sum::<u64>(), n);
        for (c, p) in counts.iter().zip(probs.iter()) {
            let sd = (n as f64 * p * (1.0 - p)).sqrt();
            assert_close(*c as f64, n as f64 * p, 5.0 * sd);
        }
    }

    #[test]
    fn multinomial_zero_probability_categories() {
        let mut rng = StdRng::seed_from_u64(9);
        let counts = sample_multinomial(&mut rng, 1000, &[0.0, 1.0, 0.0]);
        assert_eq!(counts, vec![0, 1000, 0]);
    }

    #[test]
    fn stochastic_round_integer_is_exact() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..100 {
            assert_eq!(stochastic_round(&mut rng, 7.0), 7);
            assert_eq!(stochastic_round(&mut rng, 0.0), 0);
        }
    }

    #[test]
    fn stochastic_round_is_unbiased() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = 3.7;
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| stochastic_round(&mut rng, x)).sum();
        assert_close(sum as f64 / n as f64, x, 0.01);
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(12);
        for &(n, k) in &[(10usize, 10usize), (100, 5), (100, 99), (1, 0)] {
            let idx = sample_indices(&mut rng, n, k);
            assert_eq!(idx.len(), k);
            let set: std::collections::HashSet<_> = idx.iter().collect();
            assert_eq!(set.len(), k, "indices must be distinct");
            assert!(idx.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn sample_indices_uniformity() {
        let mut rng = StdRng::seed_from_u64(13);
        let trials = 30_000;
        let mut hits = [0u64; 5];
        for _ in 0..trials {
            for i in sample_indices(&mut rng, 5, 2) {
                hits[i] += 1;
            }
        }
        // Each index appears with probability 2/5.
        for &h in &hits {
            assert_close(h as f64 / trials as f64, 0.4, 0.02);
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_rejects_oversample() {
        let mut rng = StdRng::seed_from_u64(14);
        sample_indices(&mut rng, 3, 4);
    }
}
