//! Noise distributions used by the perturbation and differential-privacy
//! mechanisms: Laplace, Gaussian and the two-sided geometric distribution.
//!
//! Samplers take any [`rand::Rng`] so experiments can run on a seeded
//! `StdRng` for reproducibility.

use rand::Rng;

/// The Laplace distribution `Lap(b)` with density `exp(−|ξ|/b) / (2b)`.
///
/// This is the noise distribution of Example 1 and Section 2 of the paper:
/// zero mean, variance `2b²`, and scale `b = Δ/ε` for `ε`-differential
/// privacy with query sensitivity `Δ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    scale: f64,
}

impl Laplace {
    /// Creates a Laplace distribution with the given scale factor `b`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive and finite.
    pub fn new(scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "Laplace scale must be positive and finite, got {scale}"
        );
        Self { scale }
    }

    /// The scale factor `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The variance, `2b²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// Draws one sample by inverse-CDF: if `U ~ Uniform(−1/2, 1/2)` then
    /// `−b · sgn(U) · ln(1 − 2|U|) ~ Lap(b)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(-0.5..0.5);
        -self.scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        (-x.abs() / self.scale).exp() / (2.0 * self.scale)
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.5 * (x / self.scale).exp()
        } else {
            1.0 - 0.5 * (-x / self.scale).exp()
        }
    }
}

/// The Gaussian (normal) distribution `N(mean, sd²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mean: f64,
    sd: f64,
}

impl Gaussian {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sd` is not strictly positive and finite.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(
            sd > 0.0 && sd.is_finite(),
            "Gaussian standard deviation must be positive and finite, got {sd}"
        );
        Self { mean, sd }
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// The variance `sd²`.
    pub fn variance(&self) -> f64 {
        self.sd * self.sd
    }

    /// Draws one sample via the Box–Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: avoid u1 == 0 so the logarithm stays finite.
        let u1: f64 = loop {
            let u: f64 = rng.gen();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2: f64 = rng.gen();
        let radius = (-2.0 * u1.ln()).sqrt();
        let angle = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.sd * radius * angle.cos()
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        crate::special::std_normal_cdf((x - self.mean) / self.sd)
    }
}

/// The two-sided geometric distribution with parameter `alpha ∈ (0, 1)`:
/// `Pr[ξ = k] = (1 − α)/(1 + α) · α^{|k|}` for integer `k`.
///
/// This is the discrete analogue of the Laplace distribution used by the
/// geometric mechanism; with `α = exp(−ε/Δ)` the mechanism is
/// `ε`-differentially private for integer-valued queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoSidedGeometric {
    alpha: f64,
}

impl TwoSidedGeometric {
    /// Creates the distribution with decay parameter `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in the open interval `(0, 1)`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "two-sided geometric alpha must lie in (0, 1), got {alpha}"
        );
        Self { alpha }
    }

    /// The decay parameter `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The variance, `2α / (1 − α)²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.alpha / ((1.0 - self.alpha) * (1.0 - self.alpha))
    }

    /// Draws one integer sample as the difference of two geometric draws.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        let g1 = self.sample_geometric(rng);
        let g2 = self.sample_geometric(rng);
        g1 - g2
    }

    /// Samples `G ~ Geometric(1 − α)` counting failures before the first
    /// success, by inversion: `G = floor(ln U / ln α)`.
    fn sample_geometric<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        let u: f64 = loop {
            let u: f64 = rng.gen();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        (u.ln() / self.alpha.ln()).floor() as i64
    }

    /// Probability mass at integer `k`.
    pub fn pmf(&self, k: i64) -> f64 {
        (1.0 - self.alpha) / (1.0 + self.alpha) * self.alpha.powi(k.unsigned_abs() as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn laplace_moments_match_monte_carlo() {
        let mut rng = StdRng::seed_from_u64(7);
        let dist = Laplace::new(20.0);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert_close(mean, 0.0, 0.3);
        assert_close(var, dist.variance(), 0.03 * dist.variance());
    }

    #[test]
    fn laplace_cdf_pdf_consistency() {
        let dist = Laplace::new(2.0);
        assert_close(dist.cdf(0.0), 0.5, 1e-12);
        assert_close(dist.cdf(f64::INFINITY), 1.0, 1e-12);
        // Numerical derivative of the CDF equals the PDF.
        for &x in &[-3.0, -0.5, 0.5, 4.0] {
            let h = 1e-6;
            let deriv = (dist.cdf(x + h) - dist.cdf(x - h)) / (2.0 * h);
            assert_close(deriv, dist.pdf(x), 1e-6);
        }
    }

    #[test]
    fn laplace_tail_symmetry() {
        let dist = Laplace::new(5.0);
        for &x in &[0.1, 1.0, 10.0] {
            assert_close(dist.cdf(-x), 1.0 - dist.cdf(x), 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "Laplace scale must be positive")]
    fn laplace_rejects_zero_scale() {
        Laplace::new(0.0);
    }

    #[test]
    fn gaussian_moments_match_monte_carlo() {
        let mut rng = StdRng::seed_from_u64(11);
        let dist = Gaussian::new(3.0, 4.0);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert_close(mean, 3.0, 0.05);
        assert_close(var, 16.0, 0.3);
    }

    #[test]
    fn gaussian_cdf_known_values() {
        // Tolerances reflect the ~1.2e-7 absolute error of the erfc fit.
        let std = Gaussian::new(0.0, 1.0);
        assert_close(std.cdf(0.0), 0.5, 2e-7);
        assert_close(std.cdf(1.96), 0.975, 1e-3);
        let shifted = Gaussian::new(10.0, 2.0);
        assert_close(shifted.cdf(10.0), 0.5, 2e-7);
    }

    #[test]
    fn geometric_pmf_sums_to_one() {
        let dist = TwoSidedGeometric::new(0.8);
        let total: f64 = (-2000..=2000).map(|k| dist.pmf(k)).sum();
        assert_close(total, 1.0, 1e-9);
    }

    #[test]
    fn geometric_moments_match_monte_carlo() {
        let mut rng = StdRng::seed_from_u64(13);
        let dist = TwoSidedGeometric::new(0.6);
        let n = 200_000;
        let samples: Vec<i64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<i64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean) * (x as f64 - mean))
            .sum::<f64>()
            / n as f64;
        assert_close(mean, 0.0, 0.05);
        assert_close(var, dist.variance(), 0.1 * dist.variance());
    }

    #[test]
    #[should_panic(expected = "alpha must lie in (0, 1)")]
    fn geometric_rejects_alpha_one() {
        TwoSidedGeometric::new(1.0);
    }

    #[test]
    fn samplers_are_deterministic_under_seed() {
        let dist = Laplace::new(1.5);
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| dist.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| dist.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
