//! The chi-square distribution and the two-binned-distribution test of
//! Section 3.4 (Equation 4 of the paper).
//!
//! The paper merges public-attribute values whose conditional SA
//! distributions cannot be told apart by the χ² test for *two binned data
//! sets with unequal numbers of data points* (Numerical Recipes §14.3), at
//! significance 0.05 and with the degrees of freedom set to the SA domain
//! size `m`.

use crate::special::{reg_gamma_lower, reg_gamma_upper};

/// The chi-square distribution with `k` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    k: f64,
}

impl ChiSquared {
    /// Creates the distribution with `k` degrees of freedom.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not strictly positive or not finite.
    pub fn new(k: f64) -> Self {
        assert!(
            k > 0.0 && k.is_finite(),
            "degrees of freedom must be positive, got {k}"
        );
        Self { k }
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> f64 {
        self.k
    }

    /// Cumulative distribution function `Pr[X <= x]`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        reg_gamma_lower(self.k / 2.0, x / 2.0)
    }

    /// Survival function `Pr[X > x]`, the p-value of an observed statistic.
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        reg_gamma_upper(self.k / 2.0, x / 2.0)
    }

    /// Quantile function: the `x` such that `cdf(x) = prob`.
    ///
    /// Solved by bisection on the monotone CDF; this is only evaluated a
    /// handful of times per merge pass, so robustness beats speed here.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `(0, 1)`.
    pub fn quantile(&self, prob: f64) -> f64 {
        assert!(
            prob > 0.0 && prob < 1.0,
            "quantile probability must lie in (0, 1), got {prob}"
        );
        // Bracket the root: the mean of χ²_k is k, variance 2k; expanding
        // upward geometrically always terminates because the CDF → 1.
        let mut lo = 0.0_f64;
        let mut hi = (self.k + 10.0 * (2.0 * self.k).sqrt()).max(1.0);
        while self.cdf(hi) < prob {
            hi *= 2.0;
            assert!(hi.is_finite(), "failed to bracket chi-square quantile");
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < prob {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo <= 1e-12 * hi.max(1.0) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    /// Critical value at significance `alpha`: `quantile(1 − alpha)`.
    pub fn critical_value(&self, alpha: f64) -> f64 {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "significance must lie in (0, 1), got {alpha}"
        );
        self.quantile(1.0 - alpha)
    }
}

/// Outcome of the two-binned χ² test of Equation 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinnedTestResult {
    /// The χ² statistic of Equation 4.
    pub statistic: f64,
    /// Degrees of freedom used (the paper sets this to the bin count `m`).
    pub dof: f64,
    /// Critical value of the χ² distribution at the chosen significance.
    pub critical: f64,
    /// `Pr[χ²_dof > statistic]`.
    pub p_value: f64,
    /// `true` when the null hypothesis (same underlying distribution) is
    /// rejected, i.e. the two histograms have a *different* impact on SA.
    pub rejects_null: bool,
}

/// Two-binned-distribution χ² test with unequal numbers of data points
/// (Equation 4 of the paper; Numerical Recipes' `chstwo` with the
/// unequal-totals scaling).
///
/// Given histograms `o` and `o2` over the same `m` bins,
///
/// ```text
/// χ² = Σ_j ( sqrt(R'/R)·o_j − sqrt(R/R')·o'_j )² / (o_j + o'_j)
/// ```
///
/// where `R = Σ o_j`, `R' = Σ o'_j`. Bins empty in both histograms contribute
/// nothing and are skipped. Following the paper, the degrees of freedom is the
/// full bin count `m` (not `m − 1`).
///
/// Returns `None` when either histogram is entirely empty — there is no
/// evidence to reject the null, and the caller should treat the pair as
/// indistinguishable.
///
/// ```
/// use rp_stats::chi2::binned_chi2_test;
///
/// // Two clearly different SA profiles are told apart at 5% significance…
/// let different = binned_chi2_test(&[900, 100], &[500, 500], 0.05).unwrap();
/// assert!(different.rejects_null);
/// // …while a scaled copy of the same profile is not.
/// let same = binned_chi2_test(&[90, 10], &[900, 100], 0.05).unwrap();
/// assert!(!same.rejects_null);
/// ```
///
/// # Panics
///
/// Panics if the histograms have different lengths or are empty.
pub fn binned_chi2_test(o: &[u64], o2: &[u64], alpha: f64) -> Option<BinnedTestResult> {
    assert_eq!(o.len(), o2.len(), "histograms must have the same bin count");
    assert!(!o.is_empty(), "histograms must be non-empty");
    let r: u64 = o.iter().sum();
    let r2: u64 = o2.iter().sum();
    if r == 0 || r2 == 0 {
        return None;
    }
    let ratio = ((r2 as f64) / (r as f64)).sqrt();
    let inv_ratio = 1.0 / ratio;
    let mut statistic = 0.0;
    for (&a, &b) in o.iter().zip(o2.iter()) {
        let total = a + b;
        if total == 0 {
            continue;
        }
        let diff = ratio * a as f64 - inv_ratio * b as f64;
        statistic += diff * diff / total as f64;
    }
    let dof = o.len() as f64;
    let dist = ChiSquared::new(dof);
    let critical = dist.critical_value(alpha);
    Some(BinnedTestResult {
        statistic,
        dof,
        critical,
        p_value: dist.sf(statistic),
        rejects_null: statistic > critical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn cdf_known_values() {
        // Reference values from standard chi-square tables.
        let d1 = ChiSquared::new(1.0);
        assert_close(d1.cdf(3.841_458_820_694_124), 0.95, 1e-9);
        let d2 = ChiSquared::new(2.0);
        // χ²_2 is Exp(1/2): CDF(x) = 1 − e^{−x/2}.
        for &x in &[0.5, 1.0, 5.0, 12.0] {
            assert_close(d2.cdf(x), 1.0 - (-x / 2.0f64).exp(), 1e-12);
        }
        let d10 = ChiSquared::new(10.0);
        assert_close(d10.cdf(18.307_038_053_275_146), 0.95, 1e-9);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &k in &[1.0, 2.0, 5.0, 50.0] {
            let d = ChiSquared::new(k);
            for &p in &[0.05, 0.5, 0.95, 0.99] {
                let x = d.quantile(p);
                assert_close(d.cdf(x), p, 1e-9);
            }
        }
    }

    #[test]
    fn critical_values_match_tables() {
        // Standard 0.05-significance critical values.
        assert_close(ChiSquared::new(1.0).critical_value(0.05), 3.841, 1e-3);
        assert_close(ChiSquared::new(2.0).critical_value(0.05), 5.991, 1e-3);
        assert_close(ChiSquared::new(5.0).critical_value(0.05), 11.070, 1e-3);
        assert_close(ChiSquared::new(50.0).critical_value(0.05), 67.505, 1e-3);
    }

    #[test]
    fn sf_complements_cdf() {
        let d = ChiSquared::new(7.0);
        for &x in &[0.1, 1.0, 7.0, 30.0] {
            assert_close(d.cdf(x) + d.sf(x), 1.0, 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "degrees of freedom must be positive")]
    fn zero_dof_rejected() {
        ChiSquared::new(0.0);
    }

    #[test]
    fn identical_histograms_never_reject() {
        let o = [100, 200, 300, 400];
        let res = binned_chi2_test(&o, &o, 0.05).unwrap();
        assert_close(res.statistic, 0.0, 1e-12);
        assert!(!res.rejects_null);
        assert_close(res.p_value, 1.0, 1e-12);
    }

    #[test]
    fn scaled_histograms_do_not_reject() {
        // o2 = 3 × o has the same shape; the unequal-totals scaling must
        // yield a zero statistic.
        let o = [50, 150, 300];
        let o2 = [150, 450, 900];
        let res = binned_chi2_test(&o, &o2, 0.05).unwrap();
        assert_close(res.statistic, 0.0, 1e-9);
        assert!(!res.rejects_null);
    }

    #[test]
    fn disjoint_histograms_reject() {
        let o = [1000, 0, 0];
        let o2 = [0, 1000, 0];
        let res = binned_chi2_test(&o, &o2, 0.05).unwrap();
        assert!(
            res.rejects_null,
            "statistic {} should reject",
            res.statistic
        );
    }

    #[test]
    fn empty_histogram_yields_none() {
        assert!(binned_chi2_test(&[0, 0], &[5, 5], 0.05).is_none());
        assert!(binned_chi2_test(&[5, 5], &[0, 0], 0.05).is_none());
    }

    #[test]
    fn statistic_matches_hand_computation() {
        // R = 10, R' = 40: χ² = Σ (2a − b/2)² / (a + b).
        let o = [6, 4];
        let o2 = [10, 30];
        let expected = (12.0f64 - 5.0).powi(2) / 16.0 + (8.0f64 - 15.0).powi(2) / 34.0;
        let res = binned_chi2_test(&o, &o2, 0.05).unwrap();
        assert_close(res.statistic, expected, 1e-12);
        assert_close(res.dof, 2.0, 0.0);
    }

    #[test]
    fn small_same_distribution_samples_usually_pass() {
        // Two modest samples from the same distribution should not reject at
        // dof = m (the paper's convention makes the test conservative).
        let o = [48, 52, 95, 105];
        let o2 = [52, 48, 105, 95];
        let res = binned_chi2_test(&o, &o2, 0.05).unwrap();
        assert!(!res.rejects_null, "statistic {}", res.statistic);
    }

    #[test]
    #[should_panic(expected = "same bin count")]
    fn mismatched_bins_panic() {
        binned_chi2_test(&[1, 2], &[1, 2, 3], 0.05);
    }
}
