//! Special functions needed by the statistical machinery.
//!
//! Everything here is implemented from scratch (Lanczos approximation for the
//! log-gamma function, series/continued-fraction evaluation for the
//! regularized incomplete gamma function, and an Abramowitz–Stegun style
//! rational approximation for the error function) so that the workspace does
//! not depend on an external scientific-computing crate.

/// Relative accuracy targeted by the iterative routines in this module.
const EPS: f64 = 1e-14;

/// Largest number of iterations allowed in series / continued-fraction loops.
const MAX_ITER: usize = 500;

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with g = 7 and 9 coefficients, which is
/// accurate to about 15 significant digits over the positive real axis.
///
/// # Panics
///
/// Panics if `x <= 0` (the log-gamma of a non-positive real is either a pole
/// or complex; callers in this workspace only need the positive axis).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");

    // Lanczos coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];

    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }

    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, x)` rises from 0 at `x = 0` to 1 as `x → ∞`. Follows the classic
/// Numerical Recipes split: a power series for `x < a + 1` and a continued
/// fraction (via [`reg_gamma_upper`]) otherwise.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn reg_gamma_lower(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_gamma_lower requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_gamma_lower requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// Evaluated directly by continued fraction for `x >= a + 1`, avoiding the
/// catastrophic cancellation that `1 − P(a, x)` would suffer in the far tail.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn reg_gamma_upper(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_gamma_upper requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_gamma_upper requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_continued_fraction(a, x)
    }
}

/// Power-series evaluation of `P(a, x)`, convergent for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Modified Lentz continued-fraction evaluation of `Q(a, x)`, convergent for
/// `x >= a + 1`.
fn gamma_continued_fraction(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Error function `erf(x)`, accurate to ~1.2e-7 absolute error.
///
/// Uses the Abramowitz–Stegun 7.1.26-style rational approximation on top of
/// the complementary error function; sufficient for the Gaussian mechanism's
/// sigma calibration and for test assertions (the workspace never needs
/// more than ~1e-6 here).
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    // Numerical Recipes `erfcc` Chebyshev fit; relative error < 1.2e-7.
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Natural logarithm of `n!` computed through [`ln_gamma`].
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
///
/// Returns negative infinity when `k > n` (the coefficient is zero).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)! for integer n.
        assert_close(ln_gamma(1.0), 0.0, 1e-12);
        assert_close(ln_gamma(2.0), 0.0, 1e-12);
        assert_close(ln_gamma(5.0), (24.0f64).ln(), 1e-12);
        assert_close(ln_gamma(11.0), (3_628_800.0f64).ln(), 1e-10);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        assert_close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
        // Γ(3/2) = √π / 2.
        assert_close(
            ln_gamma(1.5),
            0.5 * std::f64::consts::PI.ln() - std::f64::consts::LN_2,
            1e-12,
        );
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_non_positive() {
        ln_gamma(0.0);
    }

    #[test]
    fn incomplete_gamma_boundaries() {
        assert_close(reg_gamma_lower(2.5, 0.0), 0.0, 0.0);
        assert_close(reg_gamma_upper(2.5, 0.0), 1.0, 0.0);
        // P + Q = 1 across the split point of both algorithms.
        for &a in &[0.3, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.01, 0.5, a, a + 0.999, a + 1.001, 3.0 * a + 10.0] {
                let p = reg_gamma_lower(a, x);
                let q = reg_gamma_upper(a, x);
                assert_close(p + q, 1.0, 1e-12);
                assert!((0.0..=1.0).contains(&p), "P({a},{x}) = {p} out of range");
            }
        }
    }

    #[test]
    fn incomplete_gamma_exponential_special_case() {
        // For a = 1, P(1, x) = 1 − e^{−x} exactly.
        for &x in &[0.1, 0.7, 1.5, 4.0, 9.0] {
            assert_close(reg_gamma_lower(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn incomplete_gamma_known_values() {
        // Reference values computed with mpmath (50 digits).
        assert_close(reg_gamma_lower(0.5, 0.5), 0.682_689_492_137_086, 1e-10);
        assert_close(reg_gamma_lower(3.0, 2.0), 0.323_323_583_816_936_5, 1e-10);
        assert_close(reg_gamma_upper(5.0, 10.0), 0.029_252_688_076_961_3, 1e-10);
    }

    #[test]
    fn erf_known_values() {
        // The Chebyshev fit has ~1.2e-7 absolute error, so tolerances here
        // are set to the approximation's accuracy, not machine precision.
        assert_close(erf(0.0), 0.0, 2e-7);
        assert_close(erf(1.0), 0.842_700_792_949_715, 2e-7);
        assert_close(erf(-1.0), -0.842_700_792_949_715, 2e-7);
        assert_close(erf(2.0), 0.995_322_265_018_953, 2e-7);
    }

    #[test]
    fn erf_is_odd_and_erfc_complementary() {
        for &x in &[0.1, 0.5, 1.3, 2.7] {
            assert_close(erf(x) + erf(-x), 0.0, 4e-7);
            assert_close(erf(x) + erfc(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn std_normal_cdf_symmetry_and_known_quantile() {
        assert_close(std_normal_cdf(0.0), 0.5, 2e-7);
        assert_close(std_normal_cdf(1.959_963_985), 0.975, 1e-6);
        for &x in &[0.3, 1.0, 2.5] {
            assert_close(std_normal_cdf(x) + std_normal_cdf(-x), 1.0, 4e-7);
        }
    }

    #[test]
    fn ln_choose_matches_pascal() {
        assert_close(ln_choose(5, 2), (10.0f64).ln(), 1e-12);
        assert_close(ln_choose(10, 0), 0.0, 1e-12);
        assert_close(ln_choose(10, 10), 0.0, 1e-12);
        assert!(ln_choose(3, 5).is_infinite() && ln_choose(3, 5) < 0.0);
    }

    #[test]
    fn ln_factorial_small_values() {
        assert_close(ln_factorial(0), 0.0, 1e-12);
        assert_close(ln_factorial(1), 0.0, 1e-12);
        assert_close(ln_factorial(4), (24.0f64).ln(), 1e-12);
    }
}
