//! The G-test (log-likelihood-ratio test) for two binned distributions —
//! an alternative to the Equation-4 χ² statistic with the same asymptotic
//! null distribution.
//!
//! `G = 2 Σ o·ln(o/e)` summed over both histograms, where the expected
//! counts `e` come from the pooled distribution. The generalization pass
//! (`rp-core::generalize`) can run on either statistic; DESIGN.md lists
//! the comparison as an extension ablation.

use crate::chi2::{BinnedTestResult, ChiSquared};

/// G-test for two binned data sets over the same bins.
///
/// Degrees of freedom follow the paper's Equation-4 convention (`df = m`,
/// the bin count) so results are directly comparable with
/// [`crate::chi2::binned_chi2_test`]. Returns `None` when either histogram
/// is empty.
///
/// # Panics
///
/// Panics if the histograms have different lengths or are empty.
pub fn binned_g_test(o: &[u64], o2: &[u64], alpha: f64) -> Option<BinnedTestResult> {
    assert_eq!(o.len(), o2.len(), "histograms must have the same bin count");
    assert!(!o.is_empty(), "histograms must be non-empty");
    let r: u64 = o.iter().sum();
    let r2: u64 = o2.iter().sum();
    if r == 0 || r2 == 0 {
        return None;
    }
    let total = (r + r2) as f64;
    let mut statistic = 0.0;
    for (&a, &b) in o.iter().zip(o2.iter()) {
        let bin_total = (a + b) as f64;
        if bin_total == 0.0 {
            continue;
        }
        // Expected counts under the pooled null.
        let ea = bin_total * r as f64 / total;
        let eb = bin_total * r2 as f64 / total;
        if a > 0 {
            statistic += 2.0 * a as f64 * (a as f64 / ea).ln();
        }
        if b > 0 {
            statistic += 2.0 * b as f64 * (b as f64 / eb).ln();
        }
    }
    let dof = o.len() as f64;
    let dist = ChiSquared::new(dof);
    let critical = dist.critical_value(alpha);
    Some(BinnedTestResult {
        statistic,
        dof,
        critical,
        p_value: dist.sf(statistic),
        rejects_null: statistic > critical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chi2::binned_chi2_test;

    #[test]
    fn identical_histograms_give_zero_statistic() {
        let o = [100u64, 200, 300];
        let res = binned_g_test(&o, &o, 0.05).unwrap();
        assert!(res.statistic.abs() < 1e-9);
        assert!(!res.rejects_null);
    }

    #[test]
    fn scaled_histograms_do_not_reject() {
        let o = [50u64, 150, 300];
        let o2 = [150u64, 450, 900];
        let res = binned_g_test(&o, &o2, 0.05).unwrap();
        assert!(res.statistic.abs() < 1e-9, "statistic {}", res.statistic);
    }

    #[test]
    fn disjoint_histograms_reject() {
        let res = binned_g_test(&[1000, 0], &[0, 1000], 0.05).unwrap();
        assert!(res.rejects_null);
    }

    #[test]
    fn agrees_with_chi2_asymptotically() {
        // For moderate deviations the two statistics are close; they share
        // the same null distribution.
        let o = [480u64, 520, 1010, 990];
        let o2 = [520u64, 480, 990, 1010];
        let g = binned_g_test(&o, &o2, 0.05).unwrap();
        let c = binned_chi2_test(&o, &o2, 0.05).unwrap();
        assert!(
            (g.statistic - c.statistic).abs() < 0.15 * c.statistic.max(1.0),
            "G = {} vs chi2 = {}",
            g.statistic,
            c.statistic
        );
        assert_eq!(g.rejects_null, c.rejects_null);
        assert_eq!(g.critical, c.critical);
    }

    #[test]
    fn empty_histogram_yields_none() {
        assert!(binned_g_test(&[0, 0], &[5, 5], 0.05).is_none());
    }

    #[test]
    fn zero_bins_in_one_histogram_are_finite() {
        // A bin present in only one histogram must not produce NaN/inf.
        let res = binned_g_test(&[10, 0, 5], &[8, 3, 4], 0.05).unwrap();
        assert!(res.statistic.is_finite());
    }

    #[test]
    #[should_panic(expected = "same bin count")]
    fn mismatched_bins_panic() {
        binned_g_test(&[1], &[1, 2], 0.05);
    }
}
