//! Taylor-expansion moments of the ratio of two noisy counts
//! (Lemma 1 and Corollary 2 of the paper).
//!
//! Section 2 analyses the attack where an adversary divides the noisy answer
//! `Y = y + ξ2` of the refined query by the noisy answer `X = x + ξ1` of the
//! base query to estimate the rule confidence `y/x`. For zero-mean,
//! fixed-variance noise the first-order Taylor moments show that `Y/X`
//! concentrates around `y/x` as `x` grows — the core observation motivating
//! reconstruction privacy.

/// Approximate moments of `Y/X` for noisy counts with independent zero-mean
/// noise of common variance `V` (Lemma 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioMoments {
    /// `E[Y/X] ≈ (y/x)(1 + V/x²)`.
    pub mean: f64,
    /// `Var[Y/X] ≈ (V/x²)(1 + y²/x²)`.
    pub variance: f64,
}

/// Computes the Lemma-1 Taylor approximations of `E[Y/X]` and `Var[Y/X]`.
///
/// # Panics
///
/// Panics if `x == 0` (the paper's lemma assumes `x ≠ 0`) or if
/// `noise_variance < 0`.
pub fn ratio_moments(x: f64, y: f64, noise_variance: f64) -> RatioMoments {
    assert!(x != 0.0, "Lemma 1 requires x != 0");
    assert!(
        noise_variance >= 0.0,
        "noise variance must be non-negative, got {noise_variance}"
    );
    let v_over_x2 = noise_variance / (x * x);
    RatioMoments {
        mean: (y / x) * (1.0 + v_over_x2),
        variance: v_over_x2 * (1.0 + (y * y) / (x * x)),
    }
}

/// The disclosure indicator `2(b/x)²` of Corollary 2 for Laplace noise
/// `Lap(b)`.
///
/// Corollary 2 states `|E[Y/X] − y/x| <= 2(b/x)²` and
/// `Var[Y/X] <= 4(b/x)²` whenever `y <= x`. Small values of the indicator
/// mean `Y/X` is a reliable estimate of the true confidence `y/x`, i.e. a
/// sensitive disclosure through NIR. The paper's rule of thumb is that
/// `b/x <= 1/20` (indicator `<= 2/400 = 0.005`) makes the attack accurate.
///
/// ```
/// use rp_stats::ratio::laplace_disclosure_indicator;
///
/// // Table 2 of the paper: b = 20 against a true answer of 500.
/// let indicator = laplace_disclosure_indicator(20.0, 500.0);
/// assert!((indicator - 0.0032).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `x == 0`.
pub fn laplace_disclosure_indicator(b: f64, x: f64) -> f64 {
    assert!(x != 0.0, "disclosure indicator requires x != 0");
    2.0 * (b / x) * (b / x)
}

/// Corollary-2 bounds for Laplace noise: `(bias_bound, variance_bound)` =
/// `(2(b/x)², 4(b/x)²)`.
pub fn laplace_ratio_bounds(b: f64, x: f64) -> (f64, f64) {
    let indicator = laplace_disclosure_indicator(b, x);
    (indicator, 2.0 * indicator)
}

/// The paper's rule-of-thumb disclosure test: the ratio estimate is
/// considered accurate enough to disclose when `b/x <= 1/20`.
pub fn is_disclosive_rule_of_thumb(b: f64, x: f64) -> bool {
    assert!(x != 0.0, "disclosure test requires x != 0");
    (b / x).abs() <= 1.0 / 20.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Laplace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn moments_match_closed_form() {
        let m = ratio_moments(500.0, 420.0, 800.0);
        let v_over_x2 = 800.0 / 250_000.0;
        assert_close(m.mean, 0.84 * (1.0 + v_over_x2), 1e-12);
        assert_close(m.variance, v_over_x2 * (1.0 + 0.84 * 0.84), 1e-12);
    }

    #[test]
    fn zero_noise_gives_exact_ratio() {
        let m = ratio_moments(200.0, 100.0, 0.0);
        assert_close(m.mean, 0.5, 1e-12);
        assert_close(m.variance, 0.0, 1e-12);
    }

    #[test]
    fn corollary2_dominates_lemma1_when_y_le_x() {
        // With y <= x and V = 2b², Lemma 1's bias term (y/x)·V/x² <= 2(b/x)²
        // and variance (V/x²)(1 + y²/x²) <= 4(b/x)².
        for &(x, y, b) in &[
            (500.0, 420.0, 20.0),
            (1000.0, 100.0, 40.0),
            (100.0, 100.0, 4.0),
        ] {
            let v = 2.0 * b * b;
            let m = ratio_moments(x, y, v);
            let (bias_bound, var_bound) = laplace_ratio_bounds(b, x);
            let bias = (m.mean - y / x).abs();
            assert!(
                bias <= bias_bound + 1e-12,
                "bias {bias} > bound {bias_bound}"
            );
            assert!(m.variance <= var_bound + 1e-12);
        }
    }

    #[test]
    fn indicator_matches_table2_of_paper() {
        // Table 2 of the paper, spot-checked: values of 2(b/x)².
        assert_close(laplace_disclosure_indicator(10.0, 5000.0), 0.000_008, 1e-9);
        assert_close(laplace_disclosure_indicator(20.0, 500.0), 0.0032, 1e-9);
        assert_close(laplace_disclosure_indicator(40.0, 100.0), 0.32, 1e-9);
        assert_close(laplace_disclosure_indicator(200.0, 200.0), 2.0, 1e-9);
        assert_close(laplace_disclosure_indicator(200.0, 100.0), 8.0, 1e-9);
    }

    #[test]
    fn rule_of_thumb_threshold() {
        assert!(is_disclosive_rule_of_thumb(20.0, 400.0));
        assert!(is_disclosive_rule_of_thumb(20.0, 401.0));
        assert!(!is_disclosive_rule_of_thumb(20.0, 399.0));
    }

    #[test]
    fn taylor_mean_matches_monte_carlo_for_large_x() {
        // For a large true answer the first-order Taylor mean should agree
        // with simulation to well within Monte-Carlo error.
        let mut rng = StdRng::seed_from_u64(23);
        let (x, y, b) = (5000.0, 4000.0, 20.0);
        let lap = Laplace::new(b);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let noisy_x = x + lap.sample(&mut rng);
            let noisy_y = y + lap.sample(&mut rng);
            sum += noisy_y / noisy_x;
        }
        let empirical = sum / n as f64;
        let predicted = ratio_moments(x, y, lap.variance()).mean;
        assert_close(empirical, predicted, 5e-4);
    }

    #[test]
    #[should_panic(expected = "x != 0")]
    fn zero_x_rejected() {
        ratio_moments(0.0, 1.0, 1.0);
    }
}
