//! Property-based tests for the statistical substrate: identities and
//! monotonicity of the special functions, distributions and tests, across
//! randomized parameters.

use proptest::prelude::*;
use rp_stats::chi2::ChiSquared;
use rp_stats::dist::{Gaussian, Laplace, TwoSidedGeometric};
use rp_stats::gtest::binned_g_test;
use rp_stats::special::{ln_gamma, reg_gamma_lower, reg_gamma_upper};
use rp_stats::summary::OnlineStats;
use rp_stats::{binned_chi2_test, laplace_disclosure_indicator, ratio_moments};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The gamma recurrence Γ(x+1) = x·Γ(x) in log form.
    #[test]
    fn gamma_recurrence(x in 0.1f64..50.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
    }

    /// P(a, x) + Q(a, x) = 1 and both lie in [0, 1].
    #[test]
    fn incomplete_gamma_complementarity(a in 0.1f64..60.0, x in 0.0f64..200.0) {
        let p = reg_gamma_lower(a, x);
        let q = reg_gamma_upper(a, x);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((p + q - 1.0).abs() < 1e-10);
    }

    /// P(a, ·) is non-decreasing.
    #[test]
    fn incomplete_gamma_monotone(a in 0.1f64..30.0, x in 0.0f64..100.0, dx in 0.001f64..10.0) {
        prop_assert!(reg_gamma_lower(a, x + dx) >= reg_gamma_lower(a, x) - 1e-12);
    }

    /// The χ² quantile inverts the CDF everywhere.
    #[test]
    fn chi2_quantile_inverts(k in 1.0f64..80.0, p in 0.001f64..0.999) {
        let dist = ChiSquared::new(k);
        let x = dist.quantile(p);
        prop_assert!((dist.cdf(x) - p).abs() < 1e-7);
    }

    /// Laplace CDF is monotone with the right limits and median.
    #[test]
    fn laplace_cdf_monotone(b in 0.1f64..100.0, x in -500.0f64..500.0, dx in 0.001f64..50.0) {
        let d = Laplace::new(b);
        prop_assert!(d.cdf(x + dx) >= d.cdf(x));
        prop_assert!((d.cdf(0.0) - 0.5).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&d.cdf(x)));
    }

    /// Gaussian CDF symmetry about the mean.
    #[test]
    fn gaussian_cdf_symmetry(mean in -100.0f64..100.0, sd in 0.1f64..50.0, t in 0.0f64..100.0) {
        let d = Gaussian::new(mean, sd);
        let left = d.cdf(mean - t);
        let right = d.cdf(mean + t);
        prop_assert!((left + right - 1.0).abs() < 1e-6);
    }

    /// The two-sided geometric PMF is symmetric and decreasing in |k|.
    #[test]
    fn geometric_pmf_shape(alpha in 0.05f64..0.95, k in 0i64..200) {
        let d = TwoSidedGeometric::new(alpha);
        prop_assert!((d.pmf(k) - d.pmf(-k)).abs() < 1e-15);
        prop_assert!(d.pmf(k) >= d.pmf(k + 1));
    }

    /// χ² and G tests agree on identical histograms (statistic 0) and on
    /// whether scaled copies differ.
    #[test]
    fn chi2_g_agree_on_null_cases(
        hist in proptest::collection::vec(1u64..500, 2..12),
        scale in 2u64..6
    ) {
        let scaled: Vec<u64> = hist.iter().map(|&c| c * scale).collect();
        let chi = binned_chi2_test(&hist, &scaled, 0.05).unwrap();
        let g = binned_g_test(&hist, &scaled, 0.05).unwrap();
        prop_assert!(chi.statistic.abs() < 1e-6, "chi2 = {}", chi.statistic);
        prop_assert!(g.statistic.abs() < 1e-6, "G = {}", g.statistic);
        prop_assert!(!chi.rejects_null && !g.rejects_null);
    }

    /// Lemma-1 moments vanish with the noise and scale with V/x².
    #[test]
    fn ratio_moments_scaling(x in 10.0f64..1e6, y_frac in 0.0f64..1.0, v in 0.0f64..1e4) {
        let y = x * y_frac;
        let m = ratio_moments(x, y, v);
        let bias = (m.mean - y / x).abs();
        prop_assert!(bias <= v / (x * x) + 1e-12, "bias {bias}");
        prop_assert!(m.variance >= 0.0);
        let m2 = ratio_moments(2.0 * x, 2.0 * y, v);
        prop_assert!(m2.variance <= m.variance + 1e-15, "variance must shrink with x");
    }

    /// The disclosure indicator is scale-invariant in (b, x) jointly.
    #[test]
    fn indicator_scale_invariance(b in 0.1f64..1e3, x in 1.0f64..1e6, s in 0.1f64..100.0) {
        let a = laplace_disclosure_indicator(b, x);
        let scaled = laplace_disclosure_indicator(b * s, x * s);
        prop_assert!((a - scaled).abs() < 1e-9 * a.max(1e-12));
    }

    /// OnlineStats matches the naive two-pass computation.
    #[test]
    fn online_stats_matches_naive(values in proptest::collection::vec(-1e3f64..1e3, 2..100)) {
        let mut stats = OnlineStats::new();
        for &v in &values {
            stats.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
        prop_assert!((stats.mean().unwrap() - mean).abs() < 1e-8);
        prop_assert!((stats.sample_variance().unwrap() - var).abs() < 1e-6 * var.max(1.0));
    }
}
