//! Golden-value and cross-module tests for the statistics substrate:
//! published chi-squared table entries, the Equation-4 binned test against
//! hand-built histograms, G-test/chi-squared consistency, stochastic
//! rounding bias across the full fractional range, and the Lemma-1 Taylor
//! moments against a genuine Laplace Monte-Carlo experiment.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_stats::chi2::ChiSquared;
use rp_stats::dist::Laplace;
use rp_stats::gtest::binned_g_test;
use rp_stats::sampling::stochastic_round;
use rp_stats::{binned_chi2_test, ratio_moments};

#[test]
fn chi2_critical_values_match_published_tables() {
    // (dof, alpha, critical value) from standard statistical tables.
    let table = [
        (1.0, 0.05, 3.841),
        (2.0, 0.05, 5.991),
        (5.0, 0.05, 11.070),
        (10.0, 0.01, 23.209),
        (20.0, 0.05, 31.410),
    ];
    for (dof, alpha, expected) in table {
        let got = ChiSquared::new(dof).critical_value(alpha);
        assert!(
            (got - expected).abs() < 5e-3,
            "chi2({dof}).critical_value({alpha}) = {got}, table says {expected}"
        );
    }
}

#[test]
fn eq4_test_separates_real_from_null_differences() {
    // Null case: the second histogram is a scaled copy plus a tiny wobble —
    // the unequal-totals statistic stays below the critical value.
    let base = [400u64, 300, 200, 100];
    let close: Vec<u64> = base.iter().map(|&c| c * 3 + 1).collect();
    let verdict = binned_chi2_test(&base, &close, 0.05).expect("dof >= 1");
    assert!(
        !verdict.rejects_null,
        "near-copy rejected: statistic {}",
        verdict.statistic
    );

    // Real difference: mass moved across bins far beyond sampling noise.
    let shifted = [100u64, 200, 300, 400];
    let verdict = binned_chi2_test(&base, &shifted, 0.05).expect("dof >= 1");
    assert!(
        verdict.rejects_null,
        "reversed histogram accepted: statistic {}",
        verdict.statistic
    );
}

#[test]
fn chi2_and_g_statistics_grow_together() {
    // Both statistics must be monotone as one bin drifts further from the
    // null, and must agree on the reject/accept side of each drift.
    let base = [500u64, 500, 500, 500];
    let mut last_chi = 0.0;
    let mut last_g = 0.0;
    for drift in [0u64, 20, 60, 140, 300] {
        let other = [500 + drift, 500 - drift.min(499), 500, 500];
        let chi = binned_chi2_test(&base, &other, 0.05).expect("dof >= 1");
        let g = binned_g_test(&base, &other, 0.05).expect("dof >= 1");
        assert!(
            chi.statistic >= last_chi && g.statistic >= last_g,
            "statistics must grow with the drift"
        );
        assert_eq!(
            chi.rejects_null, g.rejects_null,
            "tests disagree at drift {drift}: chi2 {} vs G {}",
            chi.statistic, g.statistic
        );
        last_chi = chi.statistic;
        last_g = g.statistic;
    }
}

#[test]
fn stochastic_round_is_unbiased_across_the_fraction_range() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let draws = 40_000;
    for tenths in 1..10u32 {
        let x = 7.0 + f64::from(tenths) / 10.0;
        let mut total = 0u64;
        for _ in 0..draws {
            let r = stochastic_round(&mut rng, x);
            assert!(r == 7 || r == 8, "support must be {{floor, ceil}}, got {r}");
            total += r;
        }
        let mean = total as f64 / f64::from(draws);
        // SE = sqrt(f(1-f)/n) <= 0.0025; 5 sigma.
        assert!(
            (mean - x).abs() < 0.0125,
            "E[round({x})] drifted: mean = {mean}"
        );
    }
}

#[test]
fn lemma1_moments_match_a_real_laplace_experiment() {
    // Lemma 1 approximates E[y'/x'] and Var[y'/x'] for noisy counts. Check
    // the Taylor mean against Monte Carlo with genuine Laplace noise.
    let (x, y, b) = (5_000.0, 2_500.0, 50.0);
    let noise = Laplace::new(b);
    let moments = ratio_moments(x, y, noise.variance());

    let mut rng = StdRng::seed_from_u64(0x1E44A);
    let runs = 200_000;
    let mut sum = 0.0;
    for _ in 0..runs {
        let xn = x + noise.sample(&mut rng);
        let yn = y + noise.sample(&mut rng);
        sum += yn / xn;
    }
    let mc_mean = sum / runs as f64;
    assert!(
        (moments.mean - mc_mean).abs() < 5e-4,
        "Taylor mean {} vs Monte Carlo {mc_mean}",
        moments.mean
    );
    assert!(moments.variance > 0.0);
}
