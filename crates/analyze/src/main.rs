#![deny(unsafe_code)]
//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p rp-analyze -- --workspace --deny
//! ```
//!
//! Prints one `path:line: [rule] message` diagnostic per finding, then
//! a per-rule hit-count summary (so a green run shows what was
//! scanned, not just silence), and exits nonzero on any finding.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // The scan is always workspace-wide and findings always
            // fail the run; the flags exist so the CI invocation reads
            // as policy, not defaults.
            "--workspace" | "--deny" => {}
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("rp-analyze: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "rp-analyze: unknown argument `{other}`\n\
                     usage: rp-analyze [--workspace] [--deny] [--root <dir>]"
                );
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);

    let report = match rp_analyze::analyze_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!(
                "rp-analyze: failed to read workspace at {}: {err}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
    }
    if !report.findings.is_empty() {
        println!();
    }
    println!(
        "rp-analyze: scanned {} files under {}",
        report.files,
        root.display()
    );
    for (rule, found, allowed) in report.counts() {
        println!("  {rule:<18} {found} findings, {allowed} allowed");
    }
    if report.clean() {
        println!("rp-analyze: clean");
        ExitCode::SUCCESS
    } else {
        println!("rp-analyze: {} findings", report.findings.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels above this crate's manifest when
/// running under cargo, else the current directory.
fn workspace_root() -> PathBuf {
    if let Ok(manifest) = env::var("CARGO_MANIFEST_DIR") {
        let crate_dir = PathBuf::from(manifest);
        if let Some(root) = crate_dir.ancestors().nth(2) {
            if root.join("Cargo.toml").is_file() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}
