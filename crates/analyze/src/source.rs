//! Per-file analysis context: the token stream plus everything every
//! rule needs derived once — test-region lines, suppression pragmas,
//! and the file-local identifier type hints the heuristic rules use.

use std::collections::{HashMap, HashSet};

use crate::lexer::{lex, Tok, TokKind};

/// One suppression pragma: `allow(<rule>, "<reason>")` introduced by
/// the `rp-analyze` marker at the start of a line comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule the pragma waives.
    pub rule: String,
    /// The mandatory human reason recorded next to the waiver.
    pub reason: String,
    /// 1-based line the pragma comment sits on.
    pub line: usize,
}

/// A parsed source file plus the derived context rules consume.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// The raw source text.
    pub src: String,
    /// All tokens, comments included.
    pub toks: Vec<Tok>,
    /// Indices into `toks` of non-comment tokens (the code stream).
    pub code: Vec<usize>,
    /// `test_lines[line-1]` — the line sits inside a `#[cfg(test)]` or
    /// `#[test]` item, so the serving/determinism rules skip it.
    test_lines: Vec<bool>,
    /// Suppression pragmas keyed by every line they cover (the pragma's
    /// own line and the next line).
    allows: HashMap<usize, Vec<Allow>>,
    /// Malformed pragmas (missing reason, unparsable body).
    pub bad_pragmas: Vec<(usize, String)>,
    /// Identifiers declared with an `f32`/`f64` type ascription in this
    /// file (fields, params, lets).
    pub float_idents: HashSet<String>,
    /// Identifiers declared as `HashMap`/`HashSet` in this file
    /// (ascription or `= HashMap::new()`-style initializer).
    pub hash_idents: HashSet<String>,
    /// Identifiers declared as `RwLock` in this file — gates the
    /// `.read()`/`.write()` acquisition detector, which would otherwise
    /// drown in `io::Write` calls.
    pub rwlock_idents: HashSet<String>,
}

impl SourceFile {
    /// Parses `src` and derives the rule context. `path` must be
    /// workspace-relative (it drives rule scoping).
    pub fn new(path: &str, src: String) -> Self {
        let toks = lex(&src);
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let lines = src.lines().count().max(1);
        let mut file = Self {
            path: path.replace('\\', "/"),
            src,
            toks,
            code,
            test_lines: vec![false; lines],
            allows: HashMap::new(),
            bad_pragmas: Vec::new(),
            float_idents: HashSet::new(),
            hash_idents: HashSet::new(),
            rwlock_idents: HashSet::new(),
        };
        file.mark_test_regions();
        file.collect_pragmas();
        file.collect_ident_hints();
        file
    }

    /// The text of token `i` (an index into `toks`).
    pub fn text(&self, i: usize) -> &str {
        self.toks[i].text(&self.src)
    }

    /// Kind of the `j`-th *code* token, if any.
    pub fn kind_at(&self, j: usize) -> Option<TokKind> {
        self.code.get(j).map(|&i| self.toks[i].kind)
    }

    /// Text of the `j`-th *code* token, if any.
    pub fn text_at(&self, j: usize) -> Option<&str> {
        self.code.get(j).map(|&i| self.toks[i].text(&self.src))
    }

    /// Given the code index of a `.`, the identifier immediately before
    /// it — the receiver name of a method call chain's last segment.
    pub fn ident_before(&self, dot: usize) -> Option<&str> {
        let prev = dot.checked_sub(1)?;
        if self.kind_at(prev) == Some(TokKind::Ident) {
            self.text_at(prev)
        } else {
            None
        }
    }

    /// Every pragma group in the file, for the pragma meta-rule.
    pub fn all_allows(&self) -> impl Iterator<Item = &Vec<Allow>> {
        self.allows.values()
    }

    /// Whether `line` (1-based) is inside a `#[cfg(test)]`/`#[test]`
    /// region.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines
            .get(line.wrapping_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Looks up a pragma allowing `rule` on `line`, returning its
    /// recorded reason.
    pub fn allow_for(&self, rule: &str, line: usize) -> Option<&Allow> {
        self.allows
            .get(&line)
            .and_then(|v| v.iter().find(|a| a.rule == rule))
    }

    /// Finds `#[cfg(test)]` / `#[test]` attributes in the code stream
    /// and marks every line of the item they annotate (through its
    /// closing brace) as test-only.
    fn mark_test_regions(&mut self) {
        let mut marks: Vec<(usize, usize)> = Vec::new(); // line ranges
        let mut c = 0usize;
        while c < self.code.len() {
            if self.is_test_attr(c) {
                let start_line = self.toks[self.code[c]].line;
                // Walk to the item's opening `{` (skipping any further
                // attributes and the signature), then to its match.
                let mut j = c;
                let mut depth = 0usize;
                let mut opened = false;
                while j < self.code.len() {
                    match self.toks[self.code[j]].kind {
                        TokKind::Punct('{') => {
                            depth += 1;
                            opened = true;
                        }
                        TokKind::Punct('}') => {
                            depth = depth.saturating_sub(1);
                            if opened && depth == 0 {
                                break;
                            }
                        }
                        // `#[cfg(test)]` on a `use` or a field ends at
                        // `;` before any brace opens.
                        TokKind::Punct(';') if !opened => break,
                        _ => {}
                    }
                    j += 1;
                }
                let end_line = self
                    .toks
                    .get(self.code.get(j).copied().unwrap_or(self.toks.len() - 1))
                    .map(|t| t.line)
                    .unwrap_or(start_line);
                marks.push((start_line, end_line));
                c = j + 1;
            } else {
                c += 1;
            }
        }
        for (lo, hi) in marks {
            for line in lo..=hi {
                if let Some(slot) = self.test_lines.get_mut(line - 1) {
                    *slot = true;
                }
            }
        }
    }

    /// Is the code token at index `c` the `#` of `#[test]` or
    /// `#[cfg(test)]`/`#[cfg(all(test, ...))]`? A `not(..)` before the
    /// `test` atom (as in `#[cfg(not(test))]`) keeps the item *in*
    /// scope — that attribute marks production-only code.
    fn is_test_attr(&self, c: usize) -> bool {
        if self.kind_at(c) != Some(TokKind::Punct('#'))
            || self.kind_at(c + 1) != Some(TokKind::Punct('['))
        {
            return false;
        }
        let mut depth = 1usize;
        let mut j = c + 2;
        let mut saw_cfg = false;
        let mut saw_not = false;
        while j < self.code.len() && depth > 0 {
            match self.kind_at(j) {
                Some(TokKind::Punct('[')) => depth += 1,
                Some(TokKind::Punct(']')) => depth -= 1,
                Some(TokKind::Ident) => {
                    let text = self.text_at(j).unwrap_or("");
                    if text == "cfg" {
                        saw_cfg = true;
                    }
                    if text == "not" {
                        saw_not = true;
                    }
                    if text == "test" && !saw_not && (saw_cfg || j == c + 2) {
                        return true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        false
    }

    /// Parses suppression pragmas out of line comments. Only a comment
    /// that *starts* with the `rp-analyze:` marker is a pragma — prose
    /// that mentions the marker mid-sentence is ignored. A pragma
    /// covers its own line and the following line, so it can sit at the
    /// end of the offending line or alone above it.
    fn collect_pragmas(&mut self) {
        for t in &self.toks {
            if t.kind != TokKind::LineComment {
                continue;
            }
            let text = t.text(&self.src);
            let content = text
                .trim_start_matches('/')
                .trim_start_matches('!')
                .trim_start();
            let Some(body) = content.strip_prefix("rp-analyze:") else {
                continue;
            };
            match parse_allow(body.trim()) {
                Some((rule, reason)) if !reason.trim().is_empty() => {
                    let allow = Allow {
                        rule,
                        reason,
                        line: t.line,
                    };
                    self.allows.entry(t.line).or_default().push(allow.clone());
                    self.allows.entry(t.line + 1).or_default().push(allow);
                }
                _ => self.bad_pragmas.push((
                    t.line,
                    format!(
                        "malformed pragma `{}`: expected `allow(<rule>, \"<reason>\")` \
                         with a non-empty reason",
                        body.trim()
                    ),
                )),
            }
        }
    }

    /// Collects file-local type hints: identifiers ascribed `f32`/`f64`
    /// and identifiers bound to `HashMap`/`HashSet`/`RwLock` (by
    /// ascription or initializer). Purely lexical — an
    /// under-approximation by design.
    fn collect_ident_hints(&mut self) {
        let mut floats = HashSet::new();
        let mut hashes = HashSet::new();
        let mut rwlocks = HashSet::new();
        for w in 0..self.code.len() {
            if self.kind_at(w) != Some(TokKind::Ident) {
                continue;
            }
            let name = self.text_at(w).unwrap_or("");
            // `name : [& mut] f64` / `name : HashMap <` / `name : RwLock <`
            if self.kind_at(w + 1) == Some(TokKind::Punct(':'))
                && self.kind_at(w + 2) != Some(TokKind::Punct(':'))
            {
                let mut j = w + 2;
                while matches!(self.kind_at(j), Some(TokKind::Punct('&')))
                    || self.text_at(j) == Some("mut")
                {
                    j += 1;
                }
                match self.text_at(j) {
                    Some("f32") | Some("f64") => {
                        floats.insert(name.to_string());
                    }
                    Some("HashMap") | Some("HashSet") => {
                        hashes.insert(name.to_string());
                    }
                    Some("RwLock") => {
                        rwlocks.insert(name.to_string());
                    }
                    _ => {}
                }
            }
            // `name = HashMap ::` / `name = RwLock ::`
            if self.kind_at(w + 1) == Some(TokKind::Punct('=')) {
                match self.text_at(w + 2) {
                    Some("HashMap") | Some("HashSet") => {
                        hashes.insert(name.to_string());
                    }
                    Some("RwLock") => {
                        rwlocks.insert(name.to_string());
                    }
                    _ => {}
                }
            }
        }
        self.float_idents = floats;
        self.hash_idents = hashes;
        self.rwlock_idents = rwlocks;
    }
}

/// Parses `allow(rule, "reason")`, returning the rule name and reason.
fn parse_allow(body: &str) -> Option<(String, String)> {
    let rest = body.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    let inner = &rest[..close];
    let comma = inner.find(',')?;
    let rule = inner[..comma].trim();
    let reason = inner[comma + 1..].trim();
    let reason = reason.strip_prefix('"')?.strip_suffix('"')?;
    if rule.is_empty() {
        return None;
    }
    Some((rule.to_string(), reason.to_string()))
}
