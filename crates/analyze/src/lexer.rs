//! A lightweight Rust lexer: just enough token structure to tell code
//! from comments and string data, with a line number on every token.
//!
//! The rules engine never needs expression trees — every invariant it
//! checks is visible in the token stream — but it absolutely needs to
//! know that `unwrap` inside a string literal, a doc comment or a raw
//! string is *data*, not code. This lexer therefore handles the full
//! literal grammar that matters for that distinction: line and (nested)
//! block comments, string escapes, raw strings with arbitrary `#`
//! fences, byte strings, char literals (including `'"'` and `'\''`) and
//! the char-versus-lifetime ambiguity.

/// What a token is. Punctuation is kept one character per token — the
/// rules match multi-character operators by looking at neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// A numeric literal (integers, floats, all radices).
    Number,
    /// `"..."` or `b"..."` with escapes.
    Str,
    /// `r"..."` / `r#"..."#` / `br#"..."#` with any fence width.
    RawStr,
    /// `'x'`, `'\n'`, `'\''`, `'\u{1F600}'`, `b'x'`.
    Char,
    /// `'a` in `&'a str` — not a char literal.
    Lifetime,
    /// `// ...` to end of line (includes `///` and `//!` doc comments).
    LineComment,
    /// `/* ... */`, nested arbitrarily.
    BlockComment,
    /// One punctuation character.
    Punct(char),
}

/// One token: kind, byte range in the source, and 1-based line number
/// of its first character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    /// What the token is.
    pub kind: TokKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: usize,
}

impl Tok {
    /// The token's text within `src`.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// Lexes `src` into tokens. Whitespace is dropped; comments are kept
/// (the pragma scanner and the SAFETY rule read them). Unterminated
/// literals extend to end of input rather than panicking — a linter
/// must survive any input bytes.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: usize,
    toks: Vec<Tok>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.src[self.pos];
            let kind = match b {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                    continue;
                }
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' if self.raw_str_ahead(0) => self.raw_str(0),
                b'b' if self.peek(1) == Some(b'"') => self.quoted_str(1),
                b'b' if self.peek(1) == Some(b'r') && self.raw_str_ahead(1) => self.raw_str(1),
                b'b' if self.peek(1) == Some(b'\'') => self.char_lit(1),
                b'"' => self.quoted_str(0),
                b'\'' => self.quote(),
                _ if is_ident_start(b) => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => {
                    self.pos += 1;
                    TokKind::Punct(b as char)
                }
            };
            self.toks.push(Tok {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        self.toks
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, keeping the line counter honest.
    fn bump(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn line_comment(&mut self) -> TokKind {
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        TokKind::LineComment
    }

    fn block_comment(&mut self) -> TokKind {
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump();
            }
        }
        TokKind::BlockComment
    }

    /// Does a raw string start at `pos + offset` (at the `r`)? True for
    /// `r"`, `r#`, `r##`... followed eventually by `"`.
    fn raw_str_ahead(&self, offset: usize) -> bool {
        let mut i = offset + 1; // past the `r`
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
    }

    /// Lexes `r#"..."#` (or `br#"..."#` with `prefix` = 1): the fence is
    /// however many `#` appear before the opening quote.
    fn raw_str(&mut self, prefix: usize) -> TokKind {
        self.pos += prefix + 1; // `r` (and the `b` of `br`)
        let mut fence = 0usize;
        while self.peek(0) == Some(b'#') {
            fence += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening `"`
        loop {
            match self.peek(0) {
                None => break,
                Some(b'"') => {
                    // A close only counts with the full fence behind it.
                    let mut i = 1;
                    while i <= fence && self.peek(i) == Some(b'#') {
                        i += 1;
                    }
                    if i == fence + 1 {
                        self.pos += 1 + fence;
                        break;
                    }
                    self.pos += 1;
                }
                Some(_) => self.bump(),
            }
        }
        TokKind::RawStr
    }

    /// Lexes `"..."` with escapes (`prefix` = 1 for `b"..."`).
    fn quoted_str(&mut self, prefix: usize) -> TokKind {
        self.pos += prefix + 1; // prefix and opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => {
                    self.pos += 1;
                    if self.pos < self.src.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.bump(),
            }
        }
        TokKind::Str
    }

    /// Lexes a char literal starting at a known `'` with `prefix` bytes
    /// before it (`b'x'`).
    fn char_lit(&mut self, prefix: usize) -> TokKind {
        self.pos += prefix + 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => {
                    self.pos += 1;
                    if self.pos < self.src.len() {
                        self.bump();
                    }
                }
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                _ => self.bump(),
            }
        }
        TokKind::Char
    }

    /// A bare `'`: char literal or lifetime. `'\...` is always a char.
    /// `'x` with no closing quote right after is a lifetime (`'a str`,
    /// `'static`); `'x'` is a char.
    fn quote(&mut self) -> TokKind {
        if self.peek(1) == Some(b'\\') {
            return self.char_lit(0);
        }
        // `'` ident-char+ not followed by `'` → lifetime.
        if self.peek(1).is_some_and(is_ident_start) {
            let mut i = 2;
            while self.peek(i).is_some_and(is_ident_continue) {
                i += 1;
            }
            if self.peek(i) != Some(b'\'') {
                self.pos += i;
                return TokKind::Lifetime;
            }
        }
        self.char_lit(0)
    }

    fn ident(&mut self) -> TokKind {
        while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
            self.pos += 1;
        }
        TokKind::Ident
    }

    fn number(&mut self) -> TokKind {
        // Consume the literal body: digits, radix letters, `_`, and a
        // `.` only when a digit follows (so `0..10` keeps its range
        // punctuation and `1.5` stays one token).
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()))
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        TokKind::Number
    }
}
