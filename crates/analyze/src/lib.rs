#![deny(unsafe_code)]
//! `rp-analyze`: the workspace invariant linter.
//!
//! The repository's load-bearing contracts — byte-identical
//! publications per seed, durability-relevant I/O routed through the
//! `FaultIo` facade, serving paths that degrade instead of panic,
//! canonical float formatting, and a cycle-free lock-acquisition
//! order — are enforced here mechanically instead of by reviewer
//! vigilance. The pass is purely lexical (its own lexer, no crates.io
//! dependencies), reports `file:line` diagnostics, and exits nonzero
//! on any finding. Justified exceptions are waived in place with a
//! reasoned pragma; see [`source`] for the grammar.

pub mod lexer;
pub mod rules;
pub mod source;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{Finding, LockEdge, Suppression, RULES};
use source::SourceFile;

/// The outcome of an analysis pass over a set of files.
pub struct Report {
    /// How many files were scanned.
    pub files: usize,
    /// Surviving findings, sorted by path, line, rule.
    pub findings: Vec<Finding>,
    /// Pragma-waived findings, sorted the same way.
    pub suppressed: Vec<Suppression>,
}

impl Report {
    /// No findings survived — the tree is lint-clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Per-rule `(rule, findings, suppressed)` hit counts, in the
    /// canonical rule order.
    pub fn counts(&self) -> Vec<(&'static str, usize, usize)> {
        RULES
            .iter()
            .map(|r| {
                (
                    *r,
                    self.findings.iter().filter(|f| f.rule == *r).count(),
                    self.suppressed.iter().filter(|s| s.rule == *r).count(),
                )
            })
            .collect()
    }
}

/// Analyzes in-memory `(path, source)` pairs — the fixture-test entry
/// point. Paths drive rule scoping exactly as on disk, so a fixture
/// at `crates/engine/src/service.rs` is checked as the serving stack.
pub fn analyze_sources(files: &[(&str, &str)]) -> Report {
    let parsed: Vec<SourceFile> = files
        .iter()
        .map(|(path, src)| SourceFile::new(path, (*src).to_string()))
        .collect();
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    let mut edges: Vec<LockEdge> = Vec::new();
    for file in &parsed {
        let (f, s, e) = rules::check_file(file);
        findings.extend(f);
        suppressed.extend(s);
        edges.extend(e);
    }
    findings.extend(rules::lock_order_findings(edges));
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    suppressed
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Report {
        files: parsed.len(),
        findings,
        suppressed,
    }
}

/// Collects the workspace source set under `root`: every `.rs` file in
/// `crates/*/src/` and the root `src/`, in sorted order. Vendored
/// dependencies, integration tests, benches and fixtures are out of
/// scope by construction.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                walk(&src, &mut out)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, &mut out)?;
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyzes the workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml`).
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut files: Vec<(String, String)> = Vec::new();
    for path in workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        files.push((rel, src));
    }
    let refs: Vec<(&str, &str)> = files
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    Ok(analyze_sources(&refs))
}
