//! The rule set: each rule is a token-stream pass over one
//! [`SourceFile`] (plus one whole-workspace pass for lock ordering).
//!
//! Every rule is a deliberate *under-approximation*: purely lexical,
//! no type inference, tuned so that a finding is almost always real and
//! the reviewer burden lands on the annotated waivers
//! (`// rp-analyze: allow(<rule>, "<reason>")`), never on noise. The
//! scoping tables at the top of this module are the contract: they name
//! exactly which files each invariant governs.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Rule names, in reporting order. `pragma` is the meta-rule flagging
/// malformed or unknown suppressions.
pub const RULES: &[&str] = &[
    "determinism",
    "fault-facade",
    "no-panic-serving",
    "canonical-floats",
    "lock-order",
    "safety",
    "obs-clock",
    "pragma",
];

/// One diagnostic: a rule violation at a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// What is wrong, and what the fix direction is.
    pub message: String,
}

/// One pragma-suppressed would-be finding, kept so the summary can show
/// what was waived and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The waived rule.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the waived finding.
    pub line: usize,
    /// The reason recorded in the pragma.
    pub reason: String,
}

// ---------------------------------------------------------------------------
// Scoping: which files each invariant governs.
// ---------------------------------------------------------------------------

/// Output-producing modules whose iteration order and clocks feed
/// publication/WAL/wire bytes: all of `rp-core` and `rp-table`, plus
/// the artifact/stream side of `rp-engine`. The serving layer (cache,
/// catalog, sockets) is excluded — its hash maps never order bytes.
fn determinism_scope(path: &str) -> bool {
    if path.starts_with("crates/core/src/") || path.starts_with("crates/table/src/") {
        return true;
    }
    if let Some(rest) = path.strip_prefix("crates/engine/src/") {
        return rest.starts_with("stream/")
            || matches!(
                rest,
                "publication.rs" | "codec.rs" | "engine.rs" | "publisher.rs"
            );
    }
    false
}

/// Durability-relevant I/O must route through the `FaultIo` facade; the
/// named files *are* the facade (plus the WAL, which owns its file).
fn fault_facade_scope(path: &str) -> bool {
    path.starts_with("crates/engine/src/")
        && !path.ends_with("/fsutil.rs")
        && !path.ends_with("/fault.rs")
        && !path.ends_with("/wal.rs")
}

/// The serving stack: a panic here kills a session thread, so these
/// files must degrade through typed errors instead.
fn serving_scope(path: &str) -> bool {
    matches!(
        path,
        "crates/engine/src/protocol.rs"
            | "crates/engine/src/serve.rs"
            | "crates/engine/src/server.rs"
            | "crates/engine/src/service.rs"
            | "crates/engine/src/catalog.rs"
    )
}

/// Float bytes on the wire and in artifacts must go through the codec's
/// canonical formatter ([`canon_f64`-style wrappers] in `codec.rs`).
fn floats_scope(path: &str) -> bool {
    path.starts_with("crates/engine/src/") && path != "crates/engine/src/codec.rs"
}

/// Every wall-clock read in the workspace must route through the
/// observability clock (`obs::Clock` / `Registry::now_ns`), so tests can
/// inject a `MockClock` and timing behavior stays reproducible. Only the
/// obs module itself — where the production `MonotonicClock` lives — may
/// read `Instant`/`SystemTime` directly.
fn obs_clock_scope(path: &str) -> bool {
    !path.starts_with("crates/engine/src/obs")
}

// ---------------------------------------------------------------------------
// The per-file pass.
// ---------------------------------------------------------------------------

/// Accumulates findings, routing each through the file's pragmas.
pub struct Sink<'f> {
    file: &'f SourceFile,
    /// Surviving findings.
    pub findings: Vec<Finding>,
    /// Pragma-waived findings.
    pub suppressed: Vec<Suppression>,
}

impl<'f> Sink<'f> {
    fn new(file: &'f SourceFile) -> Self {
        Self {
            file,
            findings: Vec::new(),
            suppressed: Vec::new(),
        }
    }

    fn emit(&mut self, rule: &'static str, line: usize, message: String) {
        if let Some(allow) = self.file.allow_for(rule, line) {
            self.suppressed.push(Suppression {
                rule,
                path: self.file.path.clone(),
                line,
                reason: allow.reason.clone(),
            });
        } else {
            self.findings.push(Finding {
                rule,
                path: self.file.path.clone(),
                line,
                message,
            });
        }
    }
}

/// A directed lock-acquisition edge: `from` was held when `to` was
/// taken, at `path:line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// The lock already held.
    pub from: String,
    /// The lock acquired under it.
    pub to: String,
    /// Where the inner acquisition happened.
    pub path: String,
    /// 1-based line of the inner acquisition.
    pub line: usize,
}

/// Runs every per-file rule over `file`, returning the sink plus the
/// file's lock-acquisition edges for the global ordering pass.
pub fn check_file(file: &SourceFile) -> (Vec<Finding>, Vec<Suppression>, Vec<LockEdge>) {
    let mut sink = Sink::new(file);
    pragma_rule(file, &mut sink);
    safety_rule(file, &mut sink);
    if determinism_scope(&file.path) {
        determinism_rule(file, &mut sink);
    }
    if fault_facade_scope(&file.path) {
        fault_facade_rule(file, &mut sink);
    }
    if serving_scope(&file.path) {
        no_panic_rule(file, &mut sink);
    }
    if floats_scope(&file.path) {
        canonical_floats_rule(file, &mut sink);
    }
    if obs_clock_scope(&file.path) {
        obs_clock_rule(file, &mut sink);
    }
    let edges = lock_edges(file, &mut sink);
    (sink.findings, sink.suppressed, edges)
}

/// Flags malformed pragmas and pragmas naming a rule that does not
/// exist (a typo would otherwise silently suppress nothing).
fn pragma_rule(file: &SourceFile, sink: &mut Sink<'_>) {
    for (line, message) in &file.bad_pragmas {
        sink.findings.push(Finding {
            rule: "pragma",
            path: file.path.clone(),
            line: *line,
            message: message.clone(),
        });
    }
    let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
    for allows in file.all_allows() {
        for a in allows {
            if !RULES.contains(&a.rule.as_str()) && seen.insert((a.line, a.rule.clone())) {
                sink.findings.push(Finding {
                    rule: "pragma",
                    path: file.path.clone(),
                    line: a.line,
                    message: format!(
                        "pragma allows unknown rule `{}` (known: {})",
                        a.rule,
                        RULES.join(", ")
                    ),
                });
            }
        }
    }
}

/// `unsafe` needs an adjacent `// SAFETY:` comment, and every crate
/// root must carry `#![deny(unsafe_code)]` (or `forbid`) — a crate that
/// genuinely needs `unsafe` waives the root check with a pragma.
fn safety_rule(file: &SourceFile, sink: &mut Sink<'_>) {
    for &i in &file.code {
        let t = file.toks[i];
        if t.kind == TokKind::Ident && t.text(&file.src) == "unsafe" {
            let documented = file.toks.iter().any(|c| {
                matches!(c.kind, TokKind::LineComment | TokKind::BlockComment)
                    && c.line + 3 > t.line
                    && c.line <= t.line
                    && c.text(&file.src).contains("SAFETY:")
            });
            if !documented {
                sink.emit(
                    "safety",
                    t.line,
                    "`unsafe` without a `// SAFETY:` comment on or just above it".to_string(),
                );
            }
        }
    }
    if file.path.ends_with("src/lib.rs") && !has_deny_unsafe(file) {
        sink.emit(
            "safety",
            1,
            "crate root is missing `#![deny(unsafe_code)]` (waive with a pragma on line 1 \
             if the crate must contain `unsafe`)"
                .to_string(),
        );
    }
}

/// Does the file contain `#![deny(unsafe_code)]` / `#![forbid(unsafe_code)]`?
fn has_deny_unsafe(file: &SourceFile) -> bool {
    let code = &file.code;
    (0..code.len()).any(|c| {
        file.kind_at(c) == Some(TokKind::Punct('#'))
            && file.kind_at(c + 1) == Some(TokKind::Punct('!'))
            && file.kind_at(c + 2) == Some(TokKind::Punct('['))
            && matches!(file.text_at(c + 3), Some("deny") | Some("forbid"))
            && file.kind_at(c + 4) == Some(TokKind::Punct('('))
            && file.text_at(c + 5) == Some("unsafe_code")
    })
}

/// Methods whose call on a `HashMap`/`HashSet` observes its unordered
/// iteration order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// No unordered iteration or wall-clock reads in output-producing
/// modules: published bytes must be a pure function of `(input, seed)`.
fn determinism_rule(file: &SourceFile, sink: &mut Sink<'_>) {
    let code = &file.code;
    for (c, &tok_idx) in code.iter().enumerate() {
        let t = file.toks[tok_idx];
        if file.is_test_line(t.line) {
            continue;
        }
        // `SystemTime::now` / `Instant::now`.
        if t.kind == TokKind::Ident
            && matches!(t.text(&file.src), "SystemTime" | "Instant")
            && file.kind_at(c + 1) == Some(TokKind::Punct(':'))
            && file.kind_at(c + 2) == Some(TokKind::Punct(':'))
            && file.text_at(c + 3) == Some("now")
        {
            sink.emit(
                "determinism",
                t.line,
                format!(
                    "`{}::now()` in an output-producing module — published bytes must be a \
                     pure function of (input, seed)",
                    t.text(&file.src)
                ),
            );
        }
        // `<hash-ident> . <iter-method> (`.
        if t.kind == TokKind::Punct('.')
            && file
                .text_at(c + 1)
                .is_some_and(|m| HASH_ITER_METHODS.contains(&m))
            && file.kind_at(c + 2) == Some(TokKind::Punct('('))
        {
            if let Some(receiver) = file.ident_before(c) {
                if file.hash_idents.contains(receiver) {
                    sink.emit(
                        "determinism",
                        t.line,
                        format!(
                            "unordered iteration: `{receiver}.{}()` on a HashMap/HashSet in an \
                             output-producing module — sort before emission or use a BTree map",
                            file.text_at(c + 1).unwrap_or("?"),
                        ),
                    );
                }
            }
        }
        // `for _ in [&]<hash-ident> {`.
        if t.kind == TokKind::Ident && t.text(&file.src) == "in" {
            let mut j = c + 1;
            while matches!(file.kind_at(j), Some(TokKind::Punct('&')))
                || file.text_at(j) == Some("mut")
            {
                j += 1;
            }
            if let Some(name) = file.text_at(j) {
                if file.hash_idents.contains(name)
                    && file.kind_at(j + 1) == Some(TokKind::Punct('{'))
                {
                    sink.emit(
                        "determinism",
                        t.line,
                        format!(
                            "unordered iteration: `for .. in {name}` over a HashMap/HashSet in \
                             an output-producing module"
                        ),
                    );
                }
            }
        }
    }
}

/// Raw wall-clock reads outside the obs module: every timestamp must
/// come from the injectable `obs::Clock` (`Registry::now_ns`) so tests
/// can drive timing with a `MockClock` and the clock has one producer.
fn obs_clock_rule(file: &SourceFile, sink: &mut Sink<'_>) {
    let code = &file.code;
    for (c, &tok_idx) in code.iter().enumerate() {
        let t = file.toks[tok_idx];
        if file.is_test_line(t.line) {
            continue;
        }
        if t.kind == TokKind::Ident
            && matches!(t.text(&file.src), "SystemTime" | "Instant")
            && file.kind_at(c + 1) == Some(TokKind::Punct(':'))
            && file.kind_at(c + 2) == Some(TokKind::Punct(':'))
            && file.text_at(c + 3) == Some("now")
        {
            sink.emit(
                "obs-clock",
                t.line,
                format!(
                    "raw `{}::now()` outside the obs module — read the clock through \
                     `obs::Clock` (`Registry::now_ns`) so tests can inject a MockClock",
                    t.text(&file.src)
                ),
            );
        }
    }
}

/// Raw filesystem mutation outside the facade files: every
/// durability-relevant write must consult the injectable `FaultIo`
/// schedule, or crash-safety tests cannot reach it.
fn fault_facade_rule(file: &SourceFile, sink: &mut Sink<'_>) {
    let code = &file.code;
    for (c, &tok_idx) in code.iter().enumerate() {
        let t = file.toks[tok_idx];
        if t.kind != TokKind::Ident || file.is_test_line(t.line) {
            continue;
        }
        let text = t.text(&file.src);
        let is_path_call = |c: usize, head: &str, tail: &str| {
            file.text_at(c) == Some(head)
                && file.kind_at(c + 1) == Some(TokKind::Punct(':'))
                && file.kind_at(c + 2) == Some(TokKind::Punct(':'))
                && file.text_at(c + 3) == Some(tail)
        };
        let hit = if is_path_call(c, "File", "create") || is_path_call(c, "File", "options") {
            Some(format!("`File::{}`", file.text_at(c + 3).unwrap_or("?")))
        } else if is_path_call(c, "fs", "write") || is_path_call(c, "fs", "remove_file") {
            Some(format!("`fs::{}`", file.text_at(c + 3).unwrap_or("?")))
        } else if text == "OpenOptions"
            && file.kind_at(c + 1) == Some(TokKind::Punct(':'))
            && file.kind_at(c + 2) == Some(TokKind::Punct(':'))
        {
            Some("`OpenOptions`".to_string())
        } else {
            None
        };
        if let Some(what) = hit {
            sink.emit(
                "fault-facade",
                t.line,
                format!(
                    "{what} outside fsutil.rs/fault.rs/wal.rs — durability-relevant I/O must \
                     route through the FaultIo facade (CheckedFile / write_atomic_with)"
                ),
            );
        }
        // `.sync_data(` / `.sync_all(` / `.set_len(` method calls.
        if t.kind == TokKind::Ident
            && matches!(text, "sync_data" | "sync_all" | "set_len")
            && file.kind_at(c + 1) == Some(TokKind::Punct('('))
            && c > 0
            && file.kind_at(c - 1) == Some(TokKind::Punct('.'))
        {
            sink.emit(
                "fault-facade",
                t.line,
                format!(
                    "raw `.{text}()` outside fsutil.rs/fault.rs/wal.rs — syncs must go \
                     through the FaultIo facade so fault schedules can observe them"
                ),
            );
        }
    }
}

/// Macros that abort the session thread when reached.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// No panics in the serving stack: a malformed internal state must
/// surface as a typed `error code=internal` response, never kill the
/// session thread.
fn no_panic_rule(file: &SourceFile, sink: &mut Sink<'_>) {
    let code = &file.code;
    for c in 0..code.len() {
        let t = file.toks[code[c]];
        if file.is_test_line(t.line) {
            continue;
        }
        match t.kind {
            TokKind::Ident => {
                let text = t.text(&file.src);
                // `.unwrap(` / `.expect(`.
                if matches!(text, "unwrap" | "expect")
                    && c > 0
                    && file.kind_at(c - 1) == Some(TokKind::Punct('.'))
                    && file.kind_at(c + 1) == Some(TokKind::Punct('('))
                {
                    sink.emit(
                        "no-panic-serving",
                        t.line,
                        format!(
                            "`.{text}()` in the serving stack — degrade to a typed \
                             `ErrorCode::Internal` response instead of panicking"
                        ),
                    );
                }
                // `panic!(` and friends.
                if PANIC_MACROS.contains(&text) && file.kind_at(c + 1) == Some(TokKind::Punct('!'))
                {
                    sink.emit(
                        "no-panic-serving",
                        t.line,
                        format!("`{text}!` in the serving stack — return a typed error instead"),
                    );
                }
            }
            // Indexing: `expr[...]` where expr ends in an identifier,
            // `)`, `]` or a literal. Types (`&[u8]`), attributes
            // (`#[..]`) and macro brackets (`vec![`) never match.
            TokKind::Punct('[') if c > 0 => {
                let prev = file.toks[code[c - 1]];
                let indexes = match prev.kind {
                    TokKind::Ident => {
                        // Keywords before `[` introduce types/patterns,
                        // not index expressions.
                        !matches!(
                            prev.text(&file.src),
                            "mut" | "dyn" | "as" | "in" | "return" | "box" | "const"
                        )
                    }
                    TokKind::Punct(')') | TokKind::Punct(']') => true,
                    _ => false,
                };
                if indexes {
                    sink.emit(
                        "no-panic-serving",
                        t.line,
                        "indexing (`expr[..]`) in the serving stack can panic — use `.get()` \
                         and degrade on `None`"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Format-family macros whose output feeds wire/artifact bytes.
/// (`format!` is deliberately absent: it builds human-facing error
/// messages, which are not canonical bytes.)
const WRITE_MACROS: &[&str] = &["write", "writeln", "format_args"];

/// Floats formatted outside the codec: `write!`/`writeln!` of an
/// `f32`/`f64`-typed value must wrap it in the codec's canonical
/// formatter so every float byte on disk and wire has one producer.
fn canonical_floats_rule(file: &SourceFile, sink: &mut Sink<'_>) {
    let code = &file.code;
    let mut c = 0usize;
    while c < code.len() {
        let t = file.toks[code[c]];
        let is_write = t.kind == TokKind::Ident
            && WRITE_MACROS.contains(&t.text(&file.src))
            && file.kind_at(c + 1) == Some(TokKind::Punct('!'))
            && file.kind_at(c + 2) == Some(TokKind::Punct('('));
        if !is_write || file.is_test_line(t.line) {
            c += 1;
            continue;
        }
        // Scan the macro arguments to the matching `)`.
        let mut depth = 0usize;
        let mut j = c + 2;
        let mut call_stack: Vec<&str> = Vec::new();
        let mut saw_format_str = false;
        while j < code.len() {
            let a = file.toks[code[j]];
            match a.kind {
                TokKind::Punct('(') => {
                    depth += 1;
                    // Track the call wrapping these arguments, so floats
                    // inside `canon_f64(...)` are recognized as routed
                    // through the codec.
                    let callee = if j > 0 && file.kind_at(j - 1) == Some(TokKind::Ident) {
                        file.text_at(j - 1).unwrap_or("")
                    } else {
                        ""
                    };
                    call_stack.push(callee);
                }
                TokKind::Punct(')') => {
                    depth = depth.saturating_sub(1);
                    call_stack.pop();
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Str if !saw_format_str => {
                    saw_format_str = true;
                    for name in inline_captures(a.text(&file.src)) {
                        if file.float_idents.contains(&name) {
                            sink.emit(
                                "canonical-floats",
                                a.line,
                                format!(
                                    "float `{{{name}}}` formatted outside codec.rs — route \
                                     through the codec's canonical float formatter"
                                ),
                            );
                        }
                    }
                }
                TokKind::Ident => {
                    let text = a.text(&file.src);
                    let canonical = call_stack.contains(&"canon_f64");
                    if !canonical
                        && file.float_idents.contains(text)
                        && file.kind_at(j + 1) != Some(TokKind::Punct('('))
                        && file.kind_at(j + 1) != Some(TokKind::Punct(':'))
                    {
                        sink.emit(
                            "canonical-floats",
                            a.line,
                            format!(
                                "float `{text}` formatted outside codec.rs — wrap it in the \
                                 codec's `canon_f64(..)`"
                            ),
                        );
                    }
                    if !canonical
                        && text == "as"
                        && matches!(file.text_at(j + 1), Some("f32") | Some("f64"))
                    {
                        sink.emit(
                            "canonical-floats",
                            a.line,
                            "float cast formatted outside codec.rs — wrap it in the codec's \
                             `canon_f64(..)`"
                                .to_string(),
                        );
                    }
                }
                _ => {}
            }
            j += 1;
        }
        c = j + 1;
    }
}

/// Extracts `{name}` / `{name:spec}` inline captures from a format
/// string literal (outer quotes included in `lit`).
fn inline_captures(lit: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = lit.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            if i + 1 < bytes.len() && bytes[i + 1] == b'{' {
                i += 2; // escaped `{{`
                continue;
            }
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'}' && bytes[j] != b':' {
                j += 1;
            }
            let name = &lit[i + 1..j];
            if !name.is_empty()
                && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
                && !name.bytes().next().is_some_and(|b| b.is_ascii_digit())
            {
                out.push(name.to_string());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// One live lock guard while scanning a function body.
struct Guard {
    /// Normalized lock name (last path segment before `.lock()`).
    lock: String,
    /// Variable the guard is bound to, for `drop(var)` tracking.
    var: Option<String>,
    /// Brace depth the binding was declared at; dies below it.
    depth: usize,
    /// Statement temporary (no `let`): dies at the next `;`.
    temp: bool,
}

/// Extracts intra-function lock-acquisition edges: for each `.lock()`
/// (and `.read()`/`.write()` on an `RwLock`-ascribed receiver) taken
/// while another guard is live, records `held → taken`. The global
/// pass assembles these into the workspace acquisition graph and
/// reports cycles.
fn lock_edges(file: &SourceFile, sink: &mut Sink<'_>) -> Vec<LockEdge> {
    let mut edges: Vec<LockEdge> = Vec::new();
    let code = &file.code;
    let mut c = 0usize;
    while c < code.len() {
        // Find the next `fn name ... {`.
        if !(file.toks[code[c]].kind == TokKind::Ident && file.text(code[c]) == "fn") {
            c += 1;
            continue;
        }
        // Walk to the body's opening brace at paren/bracket depth 0.
        let mut j = c + 1;
        let mut pd = 0i32;
        let body_open = loop {
            match file.kind_at(j) {
                None => break None,
                Some(TokKind::Punct('(')) | Some(TokKind::Punct('[')) => pd += 1,
                Some(TokKind::Punct(')')) | Some(TokKind::Punct(']')) => pd -= 1,
                Some(TokKind::Punct('{')) if pd == 0 => break Some(j),
                // An associated-fn declaration (trait method without a
                // body) ends at `;`.
                Some(TokKind::Punct(';')) if pd == 0 => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(open) = body_open else {
            c = j.max(c + 1);
            continue;
        };
        // Scan the body.
        let mut depth = 1usize;
        let mut bracket = 0i32;
        let mut guards: Vec<Guard> = Vec::new();
        let mut stmt_start = open + 1;
        j = open + 1;
        while j < code.len() && depth > 0 {
            let t = file.toks[code[j]];
            match t.kind {
                TokKind::Punct('{') => {
                    depth += 1;
                    stmt_start = j + 1;
                }
                TokKind::Punct('}') => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                    stmt_start = j + 1;
                }
                TokKind::Punct('(') | TokKind::Punct('[') => bracket += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => bracket -= 1,
                TokKind::Punct(';') if bracket == 0 => {
                    guards.retain(|g| !g.temp);
                    stmt_start = j + 1;
                }
                TokKind::Ident => {
                    let text = t.text(&file.src);
                    // `drop(var)` releases a named guard early.
                    if text == "drop" && file.kind_at(j + 1) == Some(TokKind::Punct('(')) {
                        if let Some(var) = file.text_at(j + 2) {
                            guards.retain(|g| g.var.as_deref() != Some(var));
                        }
                    }
                    let acquires = (text == "lock"
                        && file.kind_at(j + 1) == Some(TokKind::Punct('('))
                        && j > 0
                        && file.kind_at(j - 1) == Some(TokKind::Punct('.')))
                        || (matches!(text, "read" | "write")
                            && file.kind_at(j + 1) == Some(TokKind::Punct('('))
                            && j > 0
                            && file.kind_at(j - 1) == Some(TokKind::Punct('.'))
                            && file
                                .ident_before(j - 1)
                                .is_some_and(|r| file.rwlock_idents.contains(r)));
                    if acquires {
                        let lock = file.ident_before(j - 1).unwrap_or("<lock>").to_string();
                        if file.is_test_line(t.line) {
                            j += 1;
                            continue;
                        }
                        for g in &guards {
                            if g.lock != lock {
                                // A pragma on the acquisition line drops
                                // the edge before cycle detection.
                                if let Some(allow) = file.allow_for("lock-order", t.line) {
                                    sink.suppressed.push(Suppression {
                                        rule: "lock-order",
                                        path: file.path.clone(),
                                        line: t.line,
                                        reason: allow.reason.clone(),
                                    });
                                } else {
                                    edges.push(LockEdge {
                                        from: g.lock.clone(),
                                        to: lock.clone(),
                                        path: file.path.clone(),
                                        line: t.line,
                                    });
                                }
                            }
                        }
                        // Bind the new guard: `let [mut] <var> =` at the
                        // statement head makes it block-scoped, anything
                        // else is a statement temporary.
                        let mut var = None;
                        let mut temp = true;
                        if file.text_at(stmt_start) == Some("let") {
                            temp = false;
                            let mut v = stmt_start + 1;
                            while matches!(file.text_at(v), Some("mut") | Some("ref")) {
                                v += 1;
                            }
                            var = file.text_at(v).map(str::to_string);
                        }
                        guards.push(Guard {
                            lock,
                            var,
                            depth,
                            temp,
                        });
                    }
                }
                _ => {}
            }
            j += 1;
        }
        c = j;
    }
    edges
}

/// Assembles the workspace acquisition graph from every file's edges
/// and reports each cycle once, at the lexicographically first edge on
/// it. Deterministic: edges are sorted before the search.
pub fn lock_order_findings(mut edges: Vec<LockEdge>) -> Vec<Finding> {
    edges.sort();
    edges.dedup();
    // adjacency: from → [(to, edge index)]
    let mut adj: BTreeMap<&str, Vec<(&str, usize)>> = BTreeMap::new();
    for (i, e) in edges.iter().enumerate() {
        adj.entry(&e.from).or_default().push((&e.to, i));
    }
    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<&str>> = BTreeSet::new();
    // DFS from every node; a path revisiting its start is a cycle.
    for &start in adj.keys().collect::<Vec<_>>().iter() {
        let mut stack: Vec<(&str, Vec<usize>)> = vec![(start, Vec::new())];
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            for &(next, ei) in adj.get(node).into_iter().flatten() {
                let mut p = path.clone();
                p.push(ei);
                if next == *start {
                    // Canonical form: the cycle's lock names, rotated to
                    // the smallest, so each cycle reports once.
                    let mut names: Vec<&str> = p.iter().map(|&i| edges[i].from.as_str()).collect();
                    let rot = names
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, n)| **n)
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    names.rotate_left(rot);
                    if reported.insert(names.clone()) {
                        let chain = p
                            .iter()
                            .map(|&i| {
                                let e = &edges[i];
                                format!("{} → {} ({}:{})", e.from, e.to, e.path, e.line)
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        let e0 = &edges[p[0]];
                        findings.push(Finding {
                            rule: "lock-order",
                            path: e0.path.clone(),
                            line: e0.line,
                            message: format!(
                                "lock acquisition cycle: {chain} — a consistent global order \
                                 is required to rule out deadlock"
                            ),
                        });
                    }
                } else if visited.insert(next) && p.len() < 16 {
                    stack.push((next, p));
                }
            }
        }
    }
    findings
}
