//! Fixture tests: for every rule, one fixture proving it fires and one
//! proving the `allow` pragma suppresses it with a recorded reason.
//! Fixtures are analyzed through the library entry point with virtual
//! workspace paths, so scoping behaves exactly as on disk.

use rp_analyze::{analyze_sources, Report};

fn run(path: &str, src: &str) -> Report {
    analyze_sources(&[(path, src)])
}

fn rules_hit(report: &Report) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

// -- determinism ------------------------------------------------------------

#[test]
fn determinism_fires_on_hash_iteration_and_clock() {
    let src = r#"
use std::collections::HashMap;
use std::time::SystemTime;
pub fn emit(m: &HashMap<u32, u32>) -> Vec<u32> {
    let t = SystemTime::now();
    let _ = t;
    let mut out = Vec::new();
    for (_k, v) in m.iter() {
        out.push(*v);
    }
    out
}
"#;
    let report = run("crates/core/src/emit.rs", src);
    // The clock read also violates obs-clock (workspace-wide scope);
    // findings report in line order, so it lands between the two
    // determinism hits (clock line 5, iteration line 8).
    assert_eq!(
        rules_hit(&report),
        vec!["determinism", "obs-clock", "determinism"]
    );
}

#[test]
fn determinism_pragma_suppresses_with_reason() {
    let src = r#"
use std::collections::HashMap;
pub fn total(m: &HashMap<u32, u64>) -> u64 {
    // rp-analyze: allow(determinism, "commutative sum, order-independent")
    m.values().sum()
}
"#;
    let report = run("crates/core/src/emit.rs", src);
    assert!(report.clean(), "{:?}", report.findings);
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].rule, "determinism");
    assert_eq!(
        report.suppressed[0].reason,
        "commutative sum, order-independent"
    );
}

#[test]
fn determinism_ignores_out_of_scope_files_and_test_code() {
    let src = r#"
use std::collections::HashMap;
pub fn emit(m: &HashMap<u32, u32>) -> usize {
    m.iter().count()
}
"#;
    // Serving layer is out of determinism scope.
    assert!(run("crates/engine/src/service.rs", src).clean());
    let test_src = r#"
use std::collections::HashMap;
#[cfg(test)]
mod tests {
    pub fn emit(m: &std::collections::HashMap<u32, u32>) -> usize {
        let m2: HashMap<u32, u32> = HashMap::new();
        let _ = m2.iter().count();
        m.iter().count()
    }
}
"#;
    assert!(run("crates/core/src/emit.rs", test_src).clean());
}

// -- fault-facade -----------------------------------------------------------

#[test]
fn fault_facade_fires_on_raw_io() {
    let src = r#"
use std::fs::{File, OpenOptions};
pub fn save(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let f = File::create(path)?;
    let g = OpenOptions::new().write(true).open(path)?;
    g.sync_data()?;
    f.set_len(0)?;
    std::fs::write(path, bytes)
}
"#;
    let report = run("crates/engine/src/stream/persist.rs", src);
    assert_eq!(
        rules_hit(&report),
        vec!["fault-facade"; 5],
        "{:?}",
        report.findings
    );
}

#[test]
fn fault_facade_pragma_and_facade_files_are_exempt() {
    let pragma_src = r#"
pub fn save(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    // rp-analyze: allow(fault-facade, "test fixture: facade-equivalent atomic write")
    std::fs::write(path, bytes)
}
"#;
    let report = run("crates/engine/src/stream/persist.rs", pragma_src);
    assert!(report.clean(), "{:?}", report.findings);
    assert_eq!(report.suppressed[0].rule, "fault-facade");

    let raw_src = r#"
pub fn save(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)
}
"#;
    // The facade files themselves may perform raw I/O.
    assert!(run("crates/engine/src/fsutil.rs", raw_src).clean());
    assert!(run("crates/engine/src/fault.rs", raw_src).clean());
    assert!(run("crates/engine/src/stream/wal.rs", raw_src).clean());
    // Other crates are out of scope.
    assert!(run("crates/core/src/io.rs", raw_src).clean());
}

// -- no-panic-serving -------------------------------------------------------

#[test]
fn no_panic_serving_fires_on_unwrap_panic_and_indexing() {
    let src = r#"
pub fn respond(x: Option<u32>, xs: &[u32]) -> u32 {
    if xs.is_empty() {
        panic!("empty");
    }
    let first = xs[0];
    first + x.unwrap()
}
"#;
    let report = run("crates/engine/src/serve.rs", src);
    assert_eq!(
        rules_hit(&report),
        vec!["no-panic-serving"; 3],
        "{:?}",
        report.findings
    );
}

#[test]
fn no_panic_serving_pragma_and_scope() {
    let src = r#"
pub fn respond(x: Option<u32>) -> u32 {
    // rp-analyze: allow(no-panic-serving, "checked one line above, cannot be None")
    x.unwrap()
}
"#;
    let report = run("crates/engine/src/catalog.rs", src);
    assert!(report.clean(), "{:?}", report.findings);
    assert_eq!(report.suppressed[0].rule, "no-panic-serving");
    assert_eq!(
        report.suppressed[0].reason,
        "checked one line above, cannot be None"
    );

    // Out of serving scope: the same code passes elsewhere.
    let plain = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(run("crates/engine/src/engine.rs", plain).clean());
    // Test code inside a serving file passes.
    let test_src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let xs = vec![1u32];
        assert_eq!(xs[0], Some(1).unwrap());
    }
}
"#;
    assert!(run("crates/engine/src/serve.rs", test_src).clean());
}

// -- canonical-floats -------------------------------------------------------

#[test]
fn canonical_floats_fires_on_inline_and_positional_floats() {
    let src = r#"
use std::fmt::Write;
pub fn enc(p: f64, q: f64) -> String {
    let mut out = String::new();
    let _ = write!(out, "p={p}");
    let _ = write!(out, "q={}", q);
    out
}
"#;
    let report = run("crates/engine/src/proto.rs", src);
    assert_eq!(
        rules_hit(&report),
        vec!["canonical-floats"; 2],
        "{:?}",
        report.findings
    );
}

#[test]
fn canonical_floats_accepts_canon_wrapper_pragma_and_codec() {
    let wrapped = r#"
use std::fmt::Write;
pub fn enc(p: f64) -> String {
    let mut out = String::new();
    let _ = write!(out, "p={}", canon_f64(p));
    out
}
"#;
    assert!(run("crates/engine/src/proto.rs", wrapped).clean());

    let pragma = r#"
use std::fmt::Write;
pub fn enc(p: f64) -> String {
    let mut out = String::new();
    // rp-analyze: allow(canonical-floats, "human-facing debug text, not wire bytes")
    let _ = write!(out, "p={p}");
    out
}
"#;
    let report = run("crates/engine/src/proto.rs", pragma);
    assert!(report.clean(), "{:?}", report.findings);
    assert_eq!(report.suppressed[0].rule, "canonical-floats");

    // codec.rs is the one legitimate float formatter.
    let raw = r#"
use std::fmt::Write;
pub fn enc(p: f64) -> String {
    let mut out = String::new();
    let _ = write!(out, "p={p}");
    out
}
"#;
    assert!(run("crates/engine/src/codec.rs", raw).clean());
}

// -- lock-order -------------------------------------------------------------

const LOCK_CYCLE: &str = r#"
use std::sync::Mutex;
pub struct S {
    a: Mutex<u32>,
    b: Mutex<u32>,
}
impl S {
    pub fn ab(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }
    pub fn ba(&self) -> u32 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga + *gb
    }
}
"#;

#[test]
fn lock_order_reports_a_cycle() {
    let report = run("crates/engine/src/state.rs", LOCK_CYCLE);
    assert_eq!(
        rules_hit(&report),
        vec!["lock-order"],
        "{:?}",
        report.findings
    );
    let f = &report.findings[0];
    assert!(f.message.contains("a → b"), "{}", f.message);
    assert!(f.message.contains("b → a"), "{}", f.message);
}

#[test]
fn lock_order_pragma_drops_the_edge() {
    let src = LOCK_CYCLE.replace(
        "    pub fn ba(&self) -> u32 {\n        let gb = self.b.lock().unwrap();\n        let ga = self.a.lock().unwrap();",
        "    pub fn ba(&self) -> u32 {\n        let gb = self.b.lock().unwrap();\n        // rp-analyze: allow(lock-order, \"startup-only path, never concurrent with ab\")\n        let ga = self.a.lock().unwrap();",
    );
    assert_ne!(src, LOCK_CYCLE);
    let report = run("crates/engine/src/state.rs", &src);
    assert!(report.clean(), "{:?}", report.findings);
    assert_eq!(report.suppressed[0].rule, "lock-order");
}

#[test]
fn lock_order_consistent_order_and_scoped_guards_are_clean() {
    let src = r#"
use std::sync::Mutex;
pub struct S {
    a: Mutex<u32>,
    b: Mutex<u32>,
}
impl S {
    pub fn ab(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }
    pub fn also_ab(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        drop(ga);
        // `ga` was dropped: this is not nested acquisition.
        let gb = self.b.lock().unwrap();
        *gb
    }
    pub fn scoped(&self) -> u32 {
        {
            let gb = self.b.lock().unwrap();
            let _ = *gb;
        }
        // The block above closed: no edge from b here.
        let ga = self.a.lock().unwrap();
        *ga
    }
}
"#;
    let report = run("crates/engine/src/state.rs", src);
    assert!(report.clean(), "{:?}", report.findings);
}

// -- obs-clock --------------------------------------------------------------

#[test]
fn obs_clock_fires_on_raw_clock_reads_anywhere() {
    let src = r#"
use std::time::Instant;
pub fn pace() -> Instant {
    Instant::now()
}
"#;
    // The serving layer is outside determinism scope, so only the
    // obs-clock rule fires on the raw read.
    let report = run("crates/engine/src/service.rs", src);
    assert_eq!(
        rules_hit(&report),
        vec!["obs-clock"],
        "{:?}",
        report.findings
    );
    // Other crates are in scope too: the rule is workspace-wide.
    let report = run("crates/experiments/src/bin/rpctl.rs", src);
    assert_eq!(
        rules_hit(&report),
        vec!["obs-clock"],
        "{:?}",
        report.findings
    );
}

#[test]
fn obs_clock_pragma_obs_module_and_test_code_are_exempt() {
    let pragma_src = r#"
use std::time::Instant;
pub fn pace() -> Instant {
    // rp-analyze: allow(obs-clock, "bootstrap: runs before the registry exists")
    Instant::now()
}
"#;
    let report = run("crates/engine/src/service.rs", pragma_src);
    assert!(report.clean(), "{:?}", report.findings);
    assert_eq!(report.suppressed[0].rule, "obs-clock");

    let raw_src = r#"
use std::time::Instant;
pub fn pace() -> Instant {
    Instant::now()
}
"#;
    // The obs module is where the production MonotonicClock lives.
    assert!(run("crates/engine/src/obs.rs", raw_src).clean());
    assert!(run("crates/engine/src/obs/clock.rs", raw_src).clean());

    let test_src = r#"
#[cfg(test)]
mod tests {
    pub fn pace() -> std::time::Instant {
        std::time::Instant::now()
    }
}
"#;
    assert!(run("crates/engine/src/service.rs", test_src).clean());
}

// -- safety -----------------------------------------------------------------

#[test]
fn safety_fires_on_undocumented_unsafe_and_missing_deny() {
    let missing_attr = "pub fn f() -> u32 { 1 }\n";
    let report = run("crates/foo/src/lib.rs", missing_attr);
    assert_eq!(rules_hit(&report), vec!["safety"]);
    assert_eq!(report.findings[0].line, 1);

    let undocumented = r#"
pub fn peek(p: *const u32) -> u32 {
    unsafe { *p }
}
"#;
    let report = run("crates/engine/src/raw.rs", undocumented);
    assert_eq!(rules_hit(&report), vec!["safety"], "{:?}", report.findings);
}

#[test]
fn safety_comment_attr_and_pragma_satisfy_the_rule() {
    let documented = r#"
pub fn peek(p: *const u32) -> u32 {
    // SAFETY: caller guarantees `p` is valid and aligned.
    unsafe { *p }
}
"#;
    assert!(run("crates/engine/src/raw.rs", documented).clean());

    let with_attr = "#![deny(unsafe_code)]\npub fn f() -> u32 { 1 }\n";
    assert!(run("crates/foo/src/lib.rs", with_attr).clean());
    let with_forbid = "#![forbid(unsafe_code)]\npub fn f() -> u32 { 1 }\n";
    assert!(run("crates/foo/src/lib.rs", with_forbid).clean());

    let waived = "// rp-analyze: allow(safety, \"crate wraps raw mmap and must use unsafe\")\npub fn f() -> u32 { 1 }\n";
    let report = run("crates/foo/src/lib.rs", waived);
    assert!(report.clean(), "{:?}", report.findings);
    assert_eq!(report.suppressed[0].rule, "safety");
}

// -- pragma (meta-rule) -----------------------------------------------------

#[test]
fn pragma_fires_on_malformed_and_unknown() {
    let missing_reason = "// rp-analyze: allow(determinism)\npub fn f() {}\n";
    let report = run("crates/core/src/x.rs", missing_reason);
    assert_eq!(rules_hit(&report), vec!["pragma"], "{:?}", report.findings);

    let empty_reason = "// rp-analyze: allow(determinism, \"\")\npub fn f() {}\n";
    assert_eq!(
        rules_hit(&run("crates/core/src/x.rs", empty_reason)),
        vec!["pragma"]
    );

    let unknown_rule = "// rp-analyze: allow(no-such-rule, \"reason\")\npub fn f() {}\n";
    let report = run("crates/core/src/x.rs", unknown_rule);
    assert_eq!(rules_hit(&report), vec!["pragma"]);
    assert!(report.findings[0].message.contains("no-such-rule"));
}

#[test]
fn pragma_prose_mentions_are_not_pragmas() {
    let src = "/// Mentions the rp-analyze: marker mid-doc, not a pragma.\npub fn f() {}\n";
    // Comment starts with `///` prose, not the marker — ignored.
    assert!(run("crates/core/src/x.rs", src).clean());
}

// -- report mechanics -------------------------------------------------------

#[test]
fn counts_cover_every_rule_and_exit_contract_matches_clean() {
    let report = run("crates/core/src/x.rs", "pub fn f() {}\n");
    assert!(report.clean());
    let counts = report.counts();
    assert_eq!(counts.len(), rp_analyze::RULES.len());
    assert!(counts
        .iter()
        .all(|&(_, found, allowed)| found == 0 && allowed == 0));
}
