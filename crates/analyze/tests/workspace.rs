//! The self-test (the checked-in workspace is lint-clean) and the CLI
//! exit-code contract: 0 on a clean tree, nonzero once a violation is
//! injected, 2 on usage errors.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze has a workspace two levels up")
        .to_path_buf()
}

#[test]
fn checked_in_workspace_is_lint_clean() {
    let report = rp_analyze::analyze_workspace(&workspace_root()).expect("workspace readable");
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The scan actually covered the tree (all ten crates plus the root
    // package), and every waiver carries a recorded reason.
    assert!(report.files >= 50, "only {} files scanned", report.files);
    assert!(!report.suppressed.is_empty());
    assert!(report
        .suppressed
        .iter()
        .all(|s| !s.reason.trim().is_empty()));
}

#[test]
fn cli_exits_zero_and_prints_hit_counts_on_the_real_tree() {
    let out = Command::new(env!("CARGO_BIN_EXE_rp-analyze"))
        .args(["--workspace", "--deny", "--root"])
        .arg(workspace_root())
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout:\n{stdout}");
    assert!(stdout.contains("rp-analyze: clean"), "{stdout}");
    // A green run lists what it scanned, not just silence.
    for rule in rp_analyze::RULES {
        assert!(
            stdout.contains(rule),
            "missing {rule} in summary:\n{stdout}"
        );
    }
    assert!(stdout.contains("allowed"), "{stdout}");
}

#[test]
fn cli_exits_nonzero_on_an_injected_violation() {
    let dir = std::env::temp_dir().join(format!("rp-analyze-inject-{}", std::process::id()));
    let src_dir = dir.join("crates/engine/src");
    fs::create_dir_all(&src_dir).expect("temp tree");
    fs::write(
        src_dir.join("service.rs"),
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .expect("fixture write");

    let out = Command::new(env!("CARGO_BIN_EXE_rp-analyze"))
        .args(["--workspace", "--deny", "--root"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    fs::remove_dir_all(&dir).ok();

    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(
        stdout.contains("crates/engine/src/service.rs:1: [no-panic-serving]"),
        "{stdout}"
    );
}

#[test]
fn cli_rejects_unknown_flags_with_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_rp-analyze"))
        .arg("--no-such-flag")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}
