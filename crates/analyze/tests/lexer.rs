//! Golden tests for the lexer: the token-kind sequences that the rules
//! engine depends on, over the literal grammar corners that a naive
//! scanner gets wrong (nested block comments, raw-string fences, char
//! literals containing `"`, lifetimes).

use rp_analyze::lexer::{lex, TokKind};

fn kinds(src: &str) -> Vec<TokKind> {
    lex(src).iter().map(|t| t.kind).collect()
}

fn texts(src: &str) -> Vec<String> {
    lex(src).iter().map(|t| t.text(src).to_string()).collect()
}

#[test]
fn nested_block_comments_are_one_token() {
    let src = "/* a /* b /* c */ */ still comment */ code";
    assert_eq!(kinds(src), vec![TokKind::BlockComment, TokKind::Ident]);
    assert_eq!(
        texts(src),
        vec!["/* a /* b /* c */ */ still comment */", "code"]
    );
}

#[test]
fn raw_strings_with_fences_swallow_quotes_and_escapes() {
    let src = r####"let s = r#"say "hi" and \ no escapes"# ; done"####;
    assert_eq!(
        kinds(src),
        vec![
            TokKind::Ident, // let
            TokKind::Ident, // s
            TokKind::Punct('='),
            TokKind::RawStr,
            TokKind::Punct(';'),
            TokKind::Ident, // done
        ]
    );
    // A `"#` inside a `##` fence does not close the string.
    let src2 = "r##\"inner \"# still\"## after";
    let toks = lex(src2);
    assert_eq!(toks[0].kind, TokKind::RawStr);
    assert_eq!(toks[0].text(src2), "r##\"inner \"# still\"##");
    assert_eq!(toks[1].text(src2), "after");
}

#[test]
fn byte_and_plain_strings_with_escapes() {
    let src = r#"b"bytes \" more" "and \" this" x"#;
    assert_eq!(kinds(src), vec![TokKind::Str, TokKind::Str, TokKind::Ident]);
}

#[test]
fn char_literal_containing_a_double_quote() {
    // The `"` inside the char must not open a string: `unwrap` after it
    // has to come through as code.
    let src = r#"let q = '"'; let s = "x"; s.unwrap()"#;
    let toks = lex(src);
    let kinds: Vec<TokKind> = toks.iter().map(|t| t.kind).collect();
    assert!(kinds.contains(&TokKind::Char));
    assert!(kinds.contains(&TokKind::Str));
    assert_eq!(toks.last().map(|t| t.kind), Some(TokKind::Punct(')')));
    assert!(toks.iter().any(|t| t.text(src) == "unwrap"));
}

#[test]
fn escaped_quote_char_and_unicode_escape() {
    let src = r"let a = '\''; let b = '\u{1F600}';";
    let chars: Vec<&str> = lex(src)
        .iter()
        .filter(|t| t.kind == TokKind::Char)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(chars, vec![r"'\''", r"'\u{1F600}'"]);
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "fn f<'a>(x: &'a str, c: char) -> &'static str { x }";
    let lifetimes: Vec<&str> = lex(src)
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
    assert!(!kinds(src).contains(&TokKind::Char));
}

#[test]
fn range_punctuation_survives_next_to_numbers() {
    let src = "for i in 0..10 { let x = 1.5; }";
    let toks = lex(src);
    let nums: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Number)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(nums, vec!["0", "10", "1.5"]);
    // The two range dots are individual puncts.
    let dots = toks
        .iter()
        .filter(|t| t.kind == TokKind::Punct('.'))
        .count();
    assert_eq!(dots, 2);
}

#[test]
fn line_comments_and_doc_comments_keep_their_text() {
    let src = "// plain\n/// doc\n//! inner\ncode";
    let comments: Vec<&str> = lex(src)
        .iter()
        .filter(|t| t.kind == TokKind::LineComment)
        .map(|t| t.text(src))
        .collect();
    assert_eq!(comments, vec!["// plain", "/// doc", "//! inner"]);
}

#[test]
fn line_numbers_track_newlines_everywhere() {
    let src = "a\n\"two\nline string\"\nb\n/* block\ncomment */ c";
    let toks = lex(src);
    let by_text: Vec<(String, usize)> = toks
        .iter()
        .map(|t| (t.text(src).to_string(), t.line))
        .collect();
    assert_eq!(by_text[0], ("a".to_string(), 1));
    assert_eq!(by_text[1].1, 2); // string starts line 2
    assert_eq!(by_text[2], ("b".to_string(), 4));
    assert_eq!(by_text.last().unwrap(), &("c".to_string(), 6));
}

#[test]
fn unterminated_literals_do_not_panic() {
    for src in ["\"open", "r#\"open", "'", "/* open", "b\"open \\", "'\\"] {
        let toks = lex(src);
        assert!(!toks.is_empty(), "no tokens for {src:?}");
    }
}
