//! Incremental publication — the record-insertion advantage the paper
//! claims for data perturbation (Section 3.1).
//!
//! "Data perturbation is more amenable to record insertion because each
//! record is perturbed independently and the reconstruction is performed
//! by the user himself. In contrast, updating (published) noisy query
//! answers can be tricky."
//!
//! [`IncrementalPublisher`] maintains a live publication: every inserted
//! record is perturbed on arrival (one coin, independent of everything
//! else), per-group histograms are kept current, and the `(λ, δ)` status
//! of each personal group is re-evaluated incrementally. When a compliant
//! group grows past its threshold `sg`, the publisher reports it so the
//! owner can re-publish that group through SPS — the paper's remedy —
//! while the rest of the publication is untouched.

use std::collections::HashMap;

use rand::Rng;
use rp_stats::sampling::stochastic_round;

use crate::perturb::UniformPerturbation;
use crate::privacy::{max_group_size, PrivacyParams};

/// Compliance status of one live personal group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupStatus {
    /// `|g| <= sg`: plain perturbation of the group is compliant.
    Compliant,
    /// `|g| > sg`: the group needs (re-)sampling before release.
    NeedsResampling,
}

/// One live personal group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveGroup {
    /// Key over the public attributes.
    pub key: Vec<u32>,
    /// Raw SA histogram (owner-side secret state).
    pub raw_hist: Vec<u64>,
    /// Published (perturbed) SA histogram.
    pub published_hist: Vec<u64>,
    /// Current compliance status.
    pub status: GroupStatus,
    /// Raw records covered by the last SPS re-publication (0 if the group
    /// was never sampled). Compliance is evaluated on the *tail* of
    /// records inserted since: the sampled prefix is private by design
    /// (the sample size *is* `sg`), so only the plainly-perturbed tail
    /// counts against the group-size threshold.
    pub republished_len: u64,
}

impl LiveGroup {
    /// Raw group size (histogram counts sum to `u64`; a `usize` cast
    /// could overflow on 32-bit targets by construction, so the sum is
    /// returned as-is).
    pub fn len(&self) -> u64 {
        self.raw_hist.iter().sum::<u64>()
    }

    /// Whether the group holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records inserted since the last SPS re-publication — the subset
    /// whose plain perturbation the `(λ, δ)` criterion is tested on.
    pub fn exposed_len(&self) -> u64 {
        self.len().saturating_sub(self.republished_len)
    }
}

/// A live reconstruction-private publication accepting record insertions.
#[derive(Debug, Clone)]
pub struct IncrementalPublisher {
    op: UniformPerturbation,
    params: PrivacyParams,
    groups: HashMap<Vec<u32>, LiveGroup>,
    inserted: u64,
}

impl IncrementalPublisher {
    /// Creates an empty publisher for SA domain size `m`, retention `p`
    /// and privacy demand `params`.
    ///
    /// # Panics
    ///
    /// Panics on invalid `(p, m)` (see [`UniformPerturbation::new`]).
    pub fn new(p: f64, m: usize, params: PrivacyParams) -> Self {
        Self {
            op: UniformPerturbation::new(p, m),
            params,
            groups: HashMap::new(),
            inserted: 0,
        }
    }

    /// Inserts one record: `key` is its public-attribute codes, `sa` its
    /// sensitive code. The record is perturbed immediately and added to
    /// the published histogram of its group. Returns the group's status
    /// *after* the insertion — discarding it silently drops the paper's
    /// remedy (a flagged group must be re-sampled before release), hence
    /// `#[must_use]`.
    ///
    /// # Panics
    ///
    /// Panics if `sa` is outside the SA domain.
    #[must_use = "a NeedsResampling status requires re-publishing the group through SPS"]
    pub fn insert<R: Rng + ?Sized>(&mut self, rng: &mut R, key: &[u32], sa: u32) -> GroupStatus {
        let m = self.op.domain_size();
        assert!((sa as usize) < m, "SA code {sa} out of domain {m}");
        self.inserted += 1;
        let perturbed = self.op.perturb_code(rng, sa);
        let group = self
            .groups
            .entry(key.to_vec())
            .or_insert_with(|| LiveGroup {
                key: key.to_vec(),
                raw_hist: vec![0; m],
                published_hist: vec![0; m],
                status: GroupStatus::Compliant,
                republished_len: 0,
            });
        group.raw_hist[sa as usize] += 1;
        group.published_hist[perturbed as usize] += 1;
        group.status = Self::evaluate(&self.op, self.params, group);
        group.status
    }

    fn evaluate(op: &UniformPerturbation, params: PrivacyParams, group: &LiveGroup) -> GroupStatus {
        let size: u64 = group.raw_hist.iter().sum();
        let exposed = size.saturating_sub(group.republished_len);
        if size == 0 || exposed == 0 {
            return GroupStatus::Compliant;
        }
        // The threshold is evaluated on the records inserted since the
        // last SPS re-publication (the sampled prefix is private by
        // design), with the whole-group maximum frequency as the
        // conservative `f` — the tail of a skewed group never gets a
        // laxer threshold than the group itself.
        let f = *group.raw_hist.iter().max().expect("non-empty") as f64 / size as f64;
        let sg = max_group_size(params, op.retention(), op.domain_size(), f);
        if exposed as f64 <= sg {
            GroupStatus::Compliant
        } else {
            GroupStatus::NeedsResampling
        }
    }

    /// Re-publishes one group through the SPS steps (sample to `sg`,
    /// perturb, scale back), replacing its published histogram. Leaves the
    /// raw state untouched and returns the new status (always
    /// [`GroupStatus::Compliant`] — the sample size *is* the design).
    ///
    /// # Panics
    ///
    /// Panics if `key` is unknown.
    pub fn republish_group<R: Rng + ?Sized>(&mut self, rng: &mut R, key: &[u32]) -> GroupStatus {
        let op = self.op;
        let params = self.params;
        let group = self
            .groups
            .get_mut(key)
            .unwrap_or_else(|| panic!("unknown group key {key:?}"));
        let size: u64 = group.raw_hist.iter().sum();
        if size == 0 {
            return GroupStatus::Compliant;
        }
        let f = *group.raw_hist.iter().max().expect("non-empty") as f64 / size as f64;
        let sg = max_group_size(params, op.retention(), op.domain_size(), f);
        if size as f64 <= sg {
            // Whole-group perturbation is compliant: republish plainly.
            // The whole group is exposed through plain UP again, so the
            // sampled-prefix baseline resets.
            group.republished_len = 0;
            group.published_hist = op.perturb_histogram(rng, &group.raw_hist);
        } else {
            let tau = sg / size as f64;
            let mut sample: Vec<u64> = group
                .raw_hist
                .iter()
                .map(|&c| stochastic_round(rng, c as f64 * tau).min(c))
                .collect();
            let mut g1: u64 = sample.iter().sum();
            if g1 == 0 {
                let argmax = group
                    .raw_hist
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .map(|(i, _)| i)
                    .expect("non-empty histogram");
                sample[argmax] = 1;
                g1 = 1;
            }
            let perturbed = op.perturb_histogram(rng, &sample);
            let tau_prime = size as f64 / g1 as f64;
            group.published_hist = perturbed
                .iter()
                .map(|&c| {
                    let base = tau_prime.floor() as u64 * c;
                    let frac = tau_prime - tau_prime.floor();
                    base + rp_stats::sampling::sample_binomial(rng, c, frac)
                })
                .collect();
            // Every current record is now covered by the SPS sample; only
            // records inserted after this point count against `sg` again.
            group.republished_len = size;
        }
        group.status = GroupStatus::Compliant;
        GroupStatus::Compliant
    }

    /// Re-publishes every group currently flagged
    /// [`GroupStatus::NeedsResampling`]; returns how many were fixed.
    pub fn republish_flagged<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        let mut keys: Vec<Vec<u32>> = self
            .groups
            // rp-analyze: allow(determinism, "keys are sorted below before any RNG draw, so map order never reaches the output")
            .values()
            .filter(|g| g.status == GroupStatus::NeedsResampling)
            .map(|g| g.key.clone())
            .collect();
        // Republish in sorted key order: the RNG consumption order (and
        // therefore the published histograms) must not depend on
        // HashMap iteration order.
        keys.sort_unstable();
        for key in &keys {
            self.republish_group(rng, key);
        }
        keys.len()
    }

    /// Records inserted so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Number of live groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Looks up a live group by key.
    pub fn group(&self, key: &[u32]) -> Option<&LiveGroup> {
        self.groups.get(key)
    }

    /// Removes a live group from the publisher and returns it — the
    /// eviction half of a spill-to-disk residency policy: a cold group's
    /// state moves out of memory and [`IncrementalPublisher::put_group`]
    /// restores it losslessly when it heats up again.
    pub fn take_group(&mut self, key: &[u32]) -> Option<LiveGroup> {
        self.groups.remove(key)
    }

    /// Restores a previously taken (or deserialized) live group.
    ///
    /// # Panics
    ///
    /// Panics if a group with the same key is already live or the
    /// histograms do not match the publisher's SA domain size.
    pub fn put_group(&mut self, group: LiveGroup) {
        let m = self.op.domain_size();
        assert_eq!(group.raw_hist.len(), m, "raw histogram arity must be m");
        assert_eq!(
            group.published_hist.len(),
            m,
            "published histogram arity must be m"
        );
        let prev = self.groups.insert(group.key.clone(), group);
        assert!(prev.is_none(), "group key is already live");
    }

    /// Iterates over all live groups (unspecified order).
    pub fn groups(&self) -> impl Iterator<Item = &LiveGroup> {
        // rp-analyze: allow(determinism, "documented unspecified order; every caller sorts or reduces commutatively before bytes are emitted")
        self.groups.values()
    }

    /// Groups currently flagged for resampling.
    pub fn flagged(&self) -> impl Iterator<Item = &LiveGroup> {
        self.groups
            // rp-analyze: allow(determinism, "documented unspecified order; callers count or re-collect and sort before any output")
            .values()
            .filter(|g| g.status == GroupStatus::NeedsResampling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn publisher() -> IncrementalPublisher {
        IncrementalPublisher::new(0.5, 2, PrivacyParams::new(0.3, 0.3))
    }

    #[test]
    fn small_groups_stay_compliant() {
        let mut p = publisher();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..50u32 {
            let status = p.insert(&mut rng, &[0], i % 2);
            assert_eq!(status, GroupStatus::Compliant);
        }
        assert_eq!(p.inserted(), 50);
        assert_eq!(p.group_count(), 1);
        let g = p.group(&[0]).unwrap();
        assert_eq!(g.len(), 50);
        assert_eq!(g.published_hist.iter().sum::<u64>(), 50);
    }

    #[test]
    fn growth_past_sg_flags_the_group() {
        let mut p = publisher();
        let mut rng = StdRng::seed_from_u64(2);
        // f = 0.7 at p = 0.5, m = 2 gives sg ≈ 131: push past it.
        let mut flagged_at = None;
        for i in 0..500u32 {
            let sa = u32::from(i % 10 >= 7);
            if p.insert(&mut rng, &[1], sa) == GroupStatus::NeedsResampling && flagged_at.is_none()
            {
                flagged_at = Some(i);
            }
        }
        let at = flagged_at.expect("group must eventually violate");
        assert!(
            (100..200).contains(&at),
            "flagged at {at}, expected near sg ≈ 131"
        );
        assert_eq!(p.flagged().count(), 1);
    }

    #[test]
    fn republish_restores_compliance_and_size() {
        let mut p = publisher();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..1000u32 {
            let _ = p.insert(&mut rng, &[0], u32::from(i % 10 >= 7));
        }
        assert_eq!(p.group(&[0]).unwrap().status, GroupStatus::NeedsResampling);
        let fixed = p.republish_flagged(&mut rng);
        assert_eq!(fixed, 1);
        let g = p.group(&[0]).unwrap();
        assert_eq!(g.status, GroupStatus::Compliant);
        // Scaling restores the group's published size near the raw size.
        let published: u64 = g.published_hist.iter().sum();
        assert!(
            (published as f64 - 1000.0).abs() < 80.0,
            "published {published}"
        );
        // Raw state untouched.
        assert_eq!(g.len(), 1000);
    }

    #[test]
    fn other_groups_untouched_by_republish() {
        let mut p = publisher();
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..1000u32 {
            let _ = p.insert(&mut rng, &[0], u32::from(i % 10 >= 7));
        }
        for i in 0..20u32 {
            let _ = p.insert(&mut rng, &[1], i % 2);
        }
        let before = p.group(&[1]).unwrap().published_hist.clone();
        p.republish_flagged(&mut rng);
        assert_eq!(p.group(&[1]).unwrap().published_hist, before);
    }

    #[test]
    fn balanced_groups_tolerate_more_records() {
        // f = 0.5 has a larger sg (≈ 214) than f = 0.9 (≈ 93) — at 150
        // records the publisher must have flagged only the skewed group.
        let mut p = publisher();
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..150u32 {
            let _ = p.insert(&mut rng, &[0], i % 2); // balanced
            let _ = p.insert(&mut rng, &[1], u32::from(i % 10 == 0)); // 90/10 skew
        }
        let balanced = p.group(&[0]).unwrap().status;
        let skewed = p.group(&[1]).unwrap().status;
        assert_eq!(skewed, GroupStatus::NeedsResampling);
        assert_eq!(balanced, GroupStatus::Compliant);
    }

    #[test]
    fn published_histogram_is_unbiased_for_compliant_groups() {
        let runs = 400;
        let mut total = [0u64; 2];
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..runs {
            let mut p = publisher();
            for i in 0..80u32 {
                let _ = p.insert(&mut rng, &[0], u32::from(i % 4 == 0)); // f0 = 0.75
            }
            let g = p.group(&[0]).unwrap();
            total[0] += g.published_hist[0];
            total[1] += g.published_hist[1];
        }
        // E[O*_1] = 80·(0.25·0.5 + 0.25) = 30.
        let mean1 = total[1] as f64 / runs as f64;
        assert!((mean1 - 30.0).abs() < 1.5, "mean {mean1}");
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn out_of_domain_sa_rejected() {
        let mut p = publisher();
        let mut rng = StdRng::seed_from_u64(7);
        let _ = p.insert(&mut rng, &[0], 5);
    }

    #[test]
    fn republished_group_flags_again_only_when_the_tail_crosses_sg() {
        let mut p = publisher();
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..1000u32 {
            let _ = p.insert(&mut rng, &[0], u32::from(i % 10 >= 7));
        }
        assert_eq!(p.republish_flagged(&mut rng), 1);
        let g = p.group(&[0]).unwrap();
        assert_eq!(g.republished_len, 1000);
        assert_eq!(g.exposed_len(), 0);
        // The sampled prefix is covered: the next insert must NOT
        // immediately re-flag the group...
        assert_eq!(
            p.insert(&mut rng, &[0], 0),
            GroupStatus::Compliant,
            "one fresh record cannot violate"
        );
        // ...but a tail of fresh records that itself crosses sg must.
        let mut reflagged_at = None;
        for i in 0..500u32 {
            if p.insert(&mut rng, &[0], u32::from(i % 10 >= 7)) == GroupStatus::NeedsResampling {
                reflagged_at = Some(i);
                break;
            }
        }
        let at = reflagged_at.expect("the tail must eventually violate");
        assert!(
            (100..300).contains(&at),
            "re-flagged after {at} fresh records, expected near sg"
        );
    }

    #[test]
    fn take_and_put_group_round_trip() {
        let mut p = publisher();
        let mut rng = StdRng::seed_from_u64(10);
        for i in 0..30u32 {
            let _ = p.insert(&mut rng, &[3], i % 2);
        }
        let taken = p.take_group(&[3]).expect("group exists");
        assert_eq!(p.group_count(), 0);
        assert!(p.group(&[3]).is_none());
        let copy = taken.clone();
        p.put_group(taken);
        assert_eq!(p.group(&[3]), Some(&copy));
        assert!(p.take_group(&[9]).is_none());
    }

    #[test]
    #[should_panic(expected = "already live")]
    fn put_duplicate_group_panics() {
        let mut p = publisher();
        let mut rng = StdRng::seed_from_u64(11);
        let _ = p.insert(&mut rng, &[0], 0);
        let g = p.group(&[0]).unwrap().clone();
        p.put_group(g);
    }

    #[test]
    #[should_panic(expected = "unknown group key")]
    fn republish_unknown_group_panics() {
        let mut p = publisher();
        let mut rng = StdRng::seed_from_u64(8);
        p.republish_group(&mut rng, &[9, 9]);
    }
}
