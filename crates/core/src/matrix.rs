//! The uniform perturbation matrix `P` of Equation 3 and its closed-form
//! inverse.
//!
//! For retention probability `p` and SA domain size `m`,
//!
//! ```text
//! P[j][i] = p + (1−p)/m   if j == i   (retain sa_i)
//!         = (1−p)/m       if j != i   (perturb sa_i to sa_j)
//! ```
//!
//! `P = p·I + ((1−p)/m)·J` where `J` is the all-ones matrix, so the inverse
//! has the closed form `P⁻¹ = (1/p)·(I − ((1−p)/m)·J)` (using `J² = mJ`).
//! The MLE reconstruction of Theorem 1 is `F′ = P⁻¹ · O*/|S|`.

/// The uniform perturbation operator's transition matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbationMatrix {
    p: f64,
    m: usize,
}

impl PerturbationMatrix {
    /// Creates the matrix for retention probability `p` over a domain of
    /// size `m`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1` and `m >= 2`. (The paper assumes `m > 2`
    /// for protection against negative-correlation prior knowledge, but the
    /// algebra only needs `m >= 2`; `m = 1` would make perturbation a no-op
    /// and reconstruction divide by zero frequency ranges.)
    pub fn new(p: f64, m: usize) -> Self {
        assert!(
            p > 0.0 && p < 1.0,
            "retention probability must lie strictly in (0, 1), got {p}"
        );
        assert!(m >= 2, "SA domain must have at least 2 values, got {m}");
        Self { p, m }
    }

    /// Retention probability `p`.
    pub fn retention(&self) -> f64 {
        self.p
    }

    /// Domain size `m`.
    pub fn domain_size(&self) -> usize {
        self.m
    }

    /// The probability that a record with SA value `i` ends up with value
    /// `j` after perturbation: `P[j][i]`.
    pub fn entry(&self, j: usize, i: usize) -> f64 {
        assert!(j < self.m && i < self.m, "matrix index out of range");
        let base = (1.0 - self.p) / self.m as f64;
        if j == i {
            self.p + base
        } else {
            base
        }
    }

    /// Entry `(j, i)` of the closed-form inverse `P⁻¹`.
    pub fn inverse_entry(&self, j: usize, i: usize) -> f64 {
        assert!(j < self.m && i < self.m, "matrix index out of range");
        let base = (1.0 - self.p) / self.m as f64;
        if j == i {
            (1.0 - base) / self.p
        } else {
            -base / self.p
        }
    }

    /// Applies `P` to a frequency vector: the expected observed distribution
    /// `E[O*]/|S| = P · f`.
    ///
    /// # Panics
    ///
    /// Panics if `freqs.len() != m`.
    pub fn forward(&self, freqs: &[f64]) -> Vec<f64> {
        assert_eq!(freqs.len(), self.m, "frequency vector must have length m");
        let base = (1.0 - self.p) / self.m as f64;
        let total: f64 = freqs.iter().sum();
        freqs.iter().map(|&f| self.p * f + base * total).collect()
    }

    /// Applies `P⁻¹` to an observed frequency vector: the MLE
    /// `F′ = P⁻¹ · (O*/|S|)`.
    ///
    /// # Panics
    ///
    /// Panics if `observed.len() != m`.
    pub fn inverse(&self, observed: &[f64]) -> Vec<f64> {
        assert_eq!(observed.len(), self.m, "observed vector must have length m");
        let base = (1.0 - self.p) / self.m as f64;
        let total: f64 = observed.iter().sum();
        observed
            .iter()
            .map(|&o| (o - base * total) / self.p)
            .collect()
    }

    /// Materializes the full `m × m` matrix (row-major), mostly for tests
    /// and for the EM reconstruction which iterates over entries.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        (0..self.m)
            .map(|j| (0..self.m).map(|i| self.entry(j, i)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn entries_match_equation_3() {
        let mat = PerturbationMatrix::new(0.2, 10);
        assert_close(mat.entry(0, 0), 0.2 + 0.08, 1e-12);
        assert_close(mat.entry(1, 0), 0.08, 1e-12);
        assert_close(mat.entry(9, 3), 0.08, 1e-12);
    }

    #[test]
    fn columns_sum_to_one() {
        for &(p, m) in &[(0.1, 2), (0.5, 10), (0.9, 50)] {
            let mat = PerturbationMatrix::new(p, m);
            for i in 0..m {
                let col_sum: f64 = (0..m).map(|j| mat.entry(j, i)).sum();
                assert_close(col_sum, 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn inverse_is_actual_inverse() {
        for &(p, m) in &[(0.2, 3), (0.5, 10), (0.7, 4)] {
            let mat = PerturbationMatrix::new(p, m);
            for j in 0..m {
                for i in 0..m {
                    let prod: f64 = (0..m)
                        .map(|k| mat.entry(j, k) * mat.inverse_entry(k, i))
                        .sum();
                    let expected = if i == j { 1.0 } else { 0.0 };
                    assert_close(prod, expected, 1e-12);
                }
            }
        }
    }

    #[test]
    fn forward_then_inverse_round_trips() {
        let mat = PerturbationMatrix::new(0.3, 5);
        let f = [0.5, 0.2, 0.1, 0.15, 0.05];
        let observed = mat.forward(&f);
        assert_close(observed.iter().sum::<f64>(), 1.0, 1e-12);
        let back = mat.inverse(&observed);
        for (a, b) in back.iter().zip(f.iter()) {
            assert_close(*a, *b, 1e-12);
        }
    }

    #[test]
    fn forward_matches_example_2() {
        // Example 2 of the paper: p = 0.2, m = 10,
        // E[F*_d] = (0.2 + 0.08)·f_d + 0.08·(1 − f_d).
        let mat = PerturbationMatrix::new(0.2, 10);
        let fd = 0.4;
        let mut f = vec![0.0; 10];
        f[0] = fd;
        // Spread the remainder over the other values arbitrarily.
        for v in f.iter_mut().skip(1) {
            *v = (1.0 - fd) / 9.0;
        }
        let observed = mat.forward(&f);
        assert_close(observed[0], 0.28 * fd + 0.08 * (1.0 - fd), 1e-12);
    }

    #[test]
    fn dense_matches_entries() {
        let mat = PerturbationMatrix::new(0.4, 4);
        let dense = mat.to_dense();
        for (j, row) in dense.iter().enumerate() {
            for (i, &value) in row.iter().enumerate() {
                assert_close(value, mat.entry(j, i), 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "strictly in (0, 1)")]
    fn p_one_rejected() {
        PerturbationMatrix::new(1.0, 5);
    }

    #[test]
    #[should_panic(expected = "at least 2 values")]
    fn m_one_rejected() {
        PerturbationMatrix::new(0.5, 1);
    }
}
