//! Auxiliary privacy criteria referenced by the paper.
//!
//! * **ρ1-ρ2 privacy** (Evfimievski–Gehrke–Srikant) — the paper leaves the
//!   retention probability `p` as an input so that "other privacy criteria,
//!   such as ρ1-ρ2 privacy, can be enforced through a proper choice of `p`"
//!   (Definition 4). The amplification analysis for uniform perturbation is
//!   implemented here, including the inverse problem of choosing `p`.
//! * **l-diversity** and **t-closeness** checkers — the posterior/prior
//!   criteria the introduction contrasts with (they treat NIR as a
//!   violation and smooth the published distribution). Useful as baselines
//!   to demonstrate what reconstruction privacy deliberately does *not*
//!   require.

use crate::groups::PersonalGroups;
use crate::matrix::PerturbationMatrix;

/// Bayes update through the perturbation matrix: the posterior over the
/// original SA value of one record given its *observed* (perturbed) value
/// and a prior.
///
/// `posterior_i ∝ P[observed | i] · prior_i`.
///
/// # Panics
///
/// Panics if `prior` does not match the matrix domain, contains negative
/// entries or sums to zero, or if `observed` is out of range.
pub fn posterior_given_observation(
    matrix: &PerturbationMatrix,
    prior: &[f64],
    observed: usize,
) -> Vec<f64> {
    let m = matrix.domain_size();
    assert_eq!(prior.len(), m, "prior must have length m");
    assert!(observed < m, "observed value {observed} out of domain {m}");
    let mut total = 0.0;
    for &p in prior {
        assert!(
            p >= 0.0 && p.is_finite(),
            "prior entries must be non-negative"
        );
        total += p;
    }
    assert!(total > 0.0, "prior must not be all zero");
    let mut post: Vec<f64> = (0..m)
        .map(|i| matrix.entry(observed, i) * prior[i] / total)
        .collect();
    let norm: f64 = post.iter().sum();
    for v in &mut post {
        *v /= norm;
    }
    post
}

/// Direct `(ρ1, ρ2)` breach check for a *specific* prior: does observing
/// any single perturbed value upgrade a belief that was at most `ρ1` to
/// more than `ρ2`?
///
/// This is the per-prior view of the amplification bound: when
/// [`satisfies_rho1_rho2`] holds, no prior can breach; when it fails, this
/// function pinpoints whether a given prior actually does.
///
/// # Panics
///
/// As [`posterior_given_observation`], plus invalid `(ρ1, ρ2)`.
pub fn breaches_rho1_rho2(
    matrix: &PerturbationMatrix,
    prior: &[f64],
    rho1: f64,
    rho2: f64,
) -> bool {
    assert!(
        0.0 < rho1 && rho1 < rho2 && rho2 < 1.0,
        "need 0 < rho1 < rho2 < 1, got ({rho1}, {rho2})"
    );
    let m = matrix.domain_size();
    let total: f64 = prior.iter().sum();
    for observed in 0..m {
        let post = posterior_given_observation(matrix, prior, observed);
        for i in 0..m {
            // The tolerance absorbs normalization round-off (e.g. a
            // uniform 1/m prior summing to 1 ± 1 ulp).
            if prior[i] / total <= rho1 + 1e-12 && post[i] > rho2 {
                return true;
            }
        }
    }
    false
}

/// The amplification factor `γ` of uniform perturbation: the worst-case
/// ratio of transition probabilities to the same output value,
/// `γ = (p + (1−p)/m) / ((1−p)/m)`.
///
/// By the amplification result, a randomization operator with `γ <=
/// ρ2(1−ρ1) / (ρ1(1−ρ2))` guarantees no `(ρ1, ρ2)` privacy breach.
///
/// # Panics
///
/// Panics on `p` outside `(0, 1)` or `m < 2`.
pub fn amplification_factor(p: f64, m: usize) -> f64 {
    assert!(p > 0.0 && p < 1.0, "retention must lie in (0, 1), got {p}");
    assert!(m >= 2, "domain size must be at least 2, got {m}");
    let base = (1.0 - p) / m as f64;
    (p + base) / base
}

/// Whether uniform perturbation with `(p, m)` guarantees `(ρ1, ρ2)` privacy
/// by amplification: `γ <= ρ2(1−ρ1) / (ρ1(1−ρ2))`.
///
/// # Panics
///
/// Panics unless `0 < ρ1 < ρ2 < 1`.
pub fn satisfies_rho1_rho2(p: f64, m: usize, rho1: f64, rho2: f64) -> bool {
    assert!(
        0.0 < rho1 && rho1 < rho2 && rho2 < 1.0,
        "need 0 < rho1 < rho2 < 1, got ({rho1}, {rho2})"
    );
    amplification_factor(p, m) <= rho2 * (1.0 - rho1) / (rho1 * (1.0 - rho2))
}

/// The largest retention probability `p` for which uniform perturbation
/// over a domain of size `m` guarantees `(ρ1, ρ2)` privacy by
/// amplification, or `None` when even `p → 0` fails (impossible here since
/// `γ → 1` as `p → 0`, but kept for API honesty against future operators).
///
/// Solving `γ(p) = (p·m)/(1−p) + 1 <= Γ` for `p` gives
/// `p <= (Γ−1) / (Γ−1+m)`.
///
/// # Panics
///
/// As [`satisfies_rho1_rho2`].
pub fn max_retention_for_rho1_rho2(m: usize, rho1: f64, rho2: f64) -> Option<f64> {
    assert!(
        0.0 < rho1 && rho1 < rho2 && rho2 < 1.0,
        "need 0 < rho1 < rho2 < 1, got ({rho1}, {rho2})"
    );
    assert!(m >= 2, "domain size must be at least 2, got {m}");
    let gamma_cap = rho2 * (1.0 - rho1) / (rho1 * (1.0 - rho2));
    if gamma_cap <= 1.0 {
        return None;
    }
    Some((gamma_cap - 1.0) / (gamma_cap - 1.0 + m as f64))
}

/// Distinct l-diversity: every personal group contains at least `l`
/// distinct SA values. Returns the largest `l` satisfied by all groups
/// (`0` for an empty grouping).
pub fn distinct_l_diversity(groups: &PersonalGroups) -> usize {
    groups
        .groups()
        .iter()
        .map(|g| g.sa_hist.iter().filter(|&&c| c > 0).count())
        .min()
        .unwrap_or(0)
}

/// Entropy l-diversity: every group's SA entropy must be at least `ln(l)`.
/// Returns the largest real `l` satisfied by all groups (`0` when empty).
pub fn entropy_l_diversity(groups: &PersonalGroups) -> f64 {
    let min = groups
        .groups()
        .iter()
        .filter(|g| !g.is_empty())
        .map(|g| {
            let n = g.len() as f64;
            let entropy: f64 = g
                .sa_hist
                .iter()
                .filter(|&&c| c > 0)
                .map(|&c| {
                    let q = c as f64 / n;
                    -q * q.ln()
                })
                .sum();
            entropy.exp()
        })
        .fold(f64::INFINITY, f64::min);
    if min.is_finite() {
        min
    } else {
        0.0
    }
}

/// t-closeness for categorical SA with the variational-distance ground
/// metric: the largest distance between any group's SA distribution and the
/// table-wide SA distribution. A publication is `t`-close for any
/// `t >=` this value. Returns `0` for an empty grouping.
pub fn t_closeness(groups: &PersonalGroups) -> f64 {
    if groups.is_empty() {
        return 0.0;
    }
    let m = groups.spec().m();
    // Global distribution.
    let mut global = vec![0u64; m];
    for g in groups.groups() {
        for (acc, &c) in global.iter_mut().zip(&g.sa_hist) {
            *acc += c;
        }
    }
    let total: u64 = global.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let global_freq: Vec<f64> = global.iter().map(|&c| c as f64 / total as f64).collect();
    groups
        .groups()
        .iter()
        .filter(|g| !g.is_empty())
        .map(|g| {
            let n = g.len() as f64;
            // Total variation distance = half the L1 distance.
            0.5 * g
                .sa_hist
                .iter()
                .zip(&global_freq)
                .map(|(&c, &q)| (c as f64 / n - q).abs())
                .sum::<f64>()
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::SaSpec;
    use rp_table::{Attribute, Schema, Table, TableBuilder};

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn amplification_matches_closed_form() {
        // p = 0.2, m = 10: γ = 0.28 / 0.08 = 3.5.
        assert_close(amplification_factor(0.2, 10), 3.5, 1e-12);
        // Smaller p amplifies less.
        assert!(amplification_factor(0.1, 10) < amplification_factor(0.5, 10));
    }

    #[test]
    fn rho1_rho2_threshold_consistent_with_inverse() {
        let (m, r1, r2) = (10usize, 0.1, 0.6);
        let p_max = max_retention_for_rho1_rho2(m, r1, r2).unwrap();
        assert!(satisfies_rho1_rho2(p_max - 1e-9, m, r1, r2));
        assert!(!satisfies_rho1_rho2(p_max + 1e-6, m, r1, r2));
    }

    #[test]
    fn larger_domains_allow_higher_retention() {
        let p_small = max_retention_for_rho1_rho2(5, 0.1, 0.6).unwrap();
        let p_large = max_retention_for_rho1_rho2(50, 0.1, 0.6).unwrap();
        assert!(
            p_small > p_large,
            "with more values each output is weaker evidence, so the cap \
             binds harder per value: p({p_small}) vs p({p_large})"
        );
    }

    fn grouped(rows: &[(&'static str, u32)]) -> (Table, PersonalGroups) {
        let schema = Schema::new(vec![
            Attribute::new("G", ["a", "b"]),
            Attribute::with_anonymous_domain("SA", 3),
        ]);
        let mut b = TableBuilder::new(schema);
        for &(g, sa) in rows {
            let gcode = u32::from(g == "b");
            b.push_codes(&[gcode, sa]).unwrap();
        }
        let t = b.build();
        let spec = SaSpec::new(&t, 1);
        let groups = PersonalGroups::build(&t, spec);
        (t, groups)
    }

    #[test]
    fn distinct_l_diversity_minimum_over_groups() {
        let (_, groups) = grouped(&[("a", 0), ("a", 1), ("a", 2), ("b", 0), ("b", 0), ("b", 1)]);
        assert_eq!(distinct_l_diversity(&groups), 2);
    }

    #[test]
    fn entropy_l_diversity_uniform_group() {
        // A single group with a uniform 3-value histogram: entropy l = 3.
        let (_, groups) = grouped(&[("a", 0), ("a", 1), ("a", 2)]);
        assert_close(entropy_l_diversity(&groups), 3.0, 1e-9);
    }

    #[test]
    fn entropy_l_diversity_skewed_below_distinct() {
        let (_, groups) = grouped(&[
            ("a", 0),
            ("a", 0),
            ("a", 0),
            ("a", 0),
            ("a", 0),
            ("a", 0),
            ("a", 0),
            ("a", 1),
        ]);
        let l = entropy_l_diversity(&groups);
        assert!(
            l > 1.0 && l < 2.0,
            "skew pulls entropy-l below distinct-l, got {l}"
        );
    }

    #[test]
    fn t_closeness_zero_when_groups_match_global() {
        let (_, groups) = grouped(&[("a", 0), ("a", 1), ("b", 0), ("b", 1)]);
        assert_close(t_closeness(&groups), 0.0, 1e-12);
    }

    #[test]
    fn t_closeness_detects_skewed_group() {
        // Group a: all SA 0. Group b: all SA 1. Global: 50/50 ⇒ TV = 0.5.
        let (_, groups) = grouped(&[("a", 0), ("a", 0), ("b", 1), ("b", 1)]);
        assert_close(t_closeness(&groups), 0.5, 1e-12);
    }

    #[test]
    #[should_panic(expected = "0 < rho1 < rho2 < 1")]
    fn inverted_rhos_rejected() {
        satisfies_rho1_rho2(0.5, 10, 0.6, 0.1);
    }

    #[test]
    fn posterior_is_a_distribution_and_tilts_toward_observation() {
        let matrix = PerturbationMatrix::new(0.2, 10);
        let prior = vec![0.1; 10];
        let post = posterior_given_observation(&matrix, &prior, 3);
        assert_close(post.iter().sum::<f64>(), 1.0, 1e-12);
        for (i, &p) in post.iter().enumerate() {
            if i == 3 {
                assert!(p > 0.1, "observed value gains belief");
            } else {
                assert!(p < 0.1, "others lose belief");
            }
        }
    }

    #[test]
    fn posterior_matches_hand_bayes() {
        // p = 0.5, m = 2: P[0|0] = 0.75, P[0|1] = 0.25. Uniform prior and
        // observation 0: posterior_0 = 0.75 / (0.75 + 0.25) = 0.75.
        let matrix = PerturbationMatrix::new(0.5, 2);
        let post = posterior_given_observation(&matrix, &[0.5, 0.5], 0);
        assert_close(post[0], 0.75, 1e-12);
        assert_close(post[1], 0.25, 1e-12);
    }

    #[test]
    fn amplification_bound_is_sound_for_uniform_priors() {
        // When the amplification condition holds, no prior breaches; check
        // a grid of priors at a compliant (p, m).
        let (r1, r2) = (0.1, 0.6);
        let m = 10;
        let p = max_retention_for_rho1_rho2(m, r1, r2).unwrap() - 1e-6;
        let matrix = PerturbationMatrix::new(p, m);
        for skew in [1.0, 2.0, 5.0] {
            let prior: Vec<f64> = (0..m).map(|i| if i == 0 { skew } else { 1.0 }).collect();
            assert!(
                !breaches_rho1_rho2(&matrix, &prior, r1, r2),
                "prior with skew {skew} breached below the amplification cap"
            );
        }
    }

    #[test]
    fn high_retention_breaches_low_priors() {
        // p close to 1 essentially publishes SA: a 10%-prior belief jumps
        // far past 60% on observation.
        let matrix = PerturbationMatrix::new(0.95, 10);
        let prior = vec![0.1; 10];
        assert!(breaches_rho1_rho2(&matrix, &prior, 0.1, 0.6));
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn posterior_rejects_bad_observation() {
        let matrix = PerturbationMatrix::new(0.5, 3);
        posterior_given_observation(&matrix, &[0.3, 0.3, 0.4], 5);
    }
}
