//! Answering count queries on perturbed data (Section 6's utility measure).
//!
//! Given a published `D*` (or `D*₂`), the Section-6 estimator for
//! `SELECT COUNT(*) WHERE NA-conditions AND SA = sa` is
//!
//! ```text
//! est = |S*| · F′
//! ```
//!
//! where `S*` is the set of perturbed records matching the `NA` conditions
//! (public attributes are never perturbed, so `S*` is exact) and `F′` is
//! the MLE of `sa`'s frequency reconstructed from `S*`.
//!
//! Two evaluation strategies are provided (DESIGN.md ablation #4):
//!
//! * [`estimate_by_scan`] — select `S*` with a full table scan per query;
//! * [`GroupedView`] — pre-aggregate per-personal-group SA histograms once,
//!   then answer each query by summing over the matching groups. The large
//!   CENSUS sweeps are only tractable this way.

use rp_table::{AttrId, BitmapIndex, CountQuery, Table};

use crate::groups::PersonalGroups;
use crate::mle::reconstruct_frequency;

/// Estimates the answer to `query` against the perturbed table by a full
/// scan: `est = |S*| · F′` (zero when `S*` is empty).
///
/// # Panics
///
/// Panics on invalid `p` or if the query's SA attribute domain size is
/// inconsistent with the table.
pub fn estimate_by_scan(perturbed: &Table, query: &CountQuery, p: f64) -> f64 {
    let m = perturbed.schema().attribute(query.sa_attr()).domain_size();
    let (support, observed) = query.answer_with_support(perturbed);
    if support == 0 {
        return 0.0;
    }
    support as f64 * reconstruct_frequency(observed, support, p, m)
}

/// Per-personal-group SA histograms of a perturbed publication, indexed for
/// fast aggregate-query answering.
///
/// Built either from a perturbed [`Table`] or directly from histogram-level
/// perturbation output (`up_histograms` / `sps_histograms`), paired with
/// the *raw* table's [`PersonalGroups`] for the group keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupedView {
    na_attrs: Vec<AttrId>,
    sa_attr: AttrId,
    m: usize,
    keys: Vec<Vec<u32>>,
    hists: Vec<Vec<u64>>,
    sizes: Vec<u64>,
    /// Per-`(NA attribute, code)` selection bitmaps over the group keys:
    /// every query's NA conjunction is the AND of the named bitmaps, 64
    /// groups per word. Built once at construction, so pool workloads over
    /// the same release never re-match keys row by row.
    key_index: BitmapIndex,
}

/// Builds the per-`(attribute, code)` bitmap index over group keys. Code
/// domains are taken as `max key code + 1` per attribute — queries naming a
/// larger code match no group, exactly like the key scan they replace.
fn build_key_index(
    na_attrs: &[AttrId],
    keys: &[Vec<u32>],
    shards: usize,
    threads: usize,
) -> BitmapIndex {
    let width = na_attrs.len();
    let mut columns: Vec<Vec<u32>> = vec![vec![0u32; keys.len()]; width];
    for (g, key) in keys.iter().enumerate() {
        for (column, &code) in columns.iter_mut().zip(key) {
            column[g] = code;
        }
    }
    let domains: Vec<usize> = columns
        .iter()
        .map(|c| c.iter().max().map_or(0, |&max| max as usize + 1))
        .collect();
    let column_refs: Vec<&[u32]> = columns.iter().map(Vec::as_slice).collect();
    BitmapIndex::from_columns(na_attrs, &column_refs, &domains, shards, threads)
}

impl GroupedView {
    /// Builds the view from per-group perturbed histograms aligned with
    /// `groups.groups()`.
    ///
    /// # Panics
    ///
    /// Panics if `hists` is not aligned with the groups or a histogram has
    /// the wrong arity.
    pub fn from_histograms(groups: &PersonalGroups, hists: Vec<Vec<u64>>) -> Self {
        Self::from_histograms_sharded(groups, hists, 1, 1)
    }

    /// As [`GroupedView::from_histograms`], building the key bitmap index
    /// in `shards` word-aligned chunks on up to `threads` scoped workers.
    /// The view is bit-for-bit identical for every `(shards, threads)`
    /// combination; sharding only changes how the construction work is cut.
    ///
    /// # Panics
    ///
    /// As [`GroupedView::from_histograms`], and if `shards == 0`.
    pub fn from_histograms_sharded(
        groups: &PersonalGroups,
        hists: Vec<Vec<u64>>,
        shards: usize,
        threads: usize,
    ) -> Self {
        assert_eq!(
            hists.len(),
            groups.len(),
            "one histogram per personal group required"
        );
        let m = groups.spec().m();
        for h in &hists {
            assert_eq!(h.len(), m, "histogram arity must equal the SA domain size");
        }
        let sizes = hists.iter().map(|h| h.iter().sum()).collect();
        let keys: Vec<Vec<u32>> = groups.groups().iter().map(|g| g.key.clone()).collect();
        let key_index = build_key_index(groups.spec().na(), &keys, shards, threads);
        Self {
            na_attrs: groups.spec().na().to_vec(),
            sa_attr: groups.spec().sa(),
            m,
            keys,
            hists,
            sizes,
            key_index,
        }
    }

    /// Builds the view by grouping a perturbed table along the same spec as
    /// `groups` (the raw-table grouping): the keys are recomputed from the
    /// perturbed table, whose public attributes are identical to the raw
    /// table's.
    pub fn from_perturbed_table(groups: &PersonalGroups, perturbed: &Table) -> Self {
        let spec = groups.spec();
        let regrouped = PersonalGroups::build(perturbed, spec.clone());
        let keys: Vec<Vec<u32>> = regrouped.groups().iter().map(|g| g.key.clone()).collect();
        let key_index = build_key_index(spec.na(), &keys, 1, 1);
        Self {
            na_attrs: spec.na().to_vec(),
            sa_attr: spec.sa(),
            m: spec.m(),
            keys,
            hists: regrouped
                .groups()
                .iter()
                .map(|g| g.sa_hist.clone())
                .collect(),
            sizes: regrouped.groups().iter().map(|g| g.len() as u64).collect(),
            key_index,
        }
    }

    /// Number of groups in the view.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the view has no groups.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Total records across all groups.
    pub fn total_records(&self) -> u64 {
        self.sizes.iter().sum()
    }

    /// `(support, observed)` of the perturbed subset matching the query's
    /// `NA` pattern: `|S*|` and `O*`. The NA conjunction is evaluated on the
    /// cached key bitmaps (bitwise AND over 64-group words), never key by
    /// key; answers are identical to the scan it replaces.
    pub fn support_and_observed(&self, query: &CountQuery) -> (u64, u64) {
        let sa = query.sa_value() as usize;
        match self.key_index.select_bitmap(query.na_pattern()) {
            None => (
                self.sizes.iter().sum(),
                self.hists.iter().map(|h| h[sa]).sum(),
            ),
            Some(matching) => {
                let mut support = 0u64;
                let mut observed = 0u64;
                for g in matching.iter_ones() {
                    support += self.sizes[g as usize];
                    observed += self.hists[g as usize][sa];
                }
                (support, observed)
            }
        }
    }

    /// Precomputes, for each query, the indices of the matching groups (by
    /// ANDing the cached key bitmaps). Matching depends only on the (fixed)
    /// keys, so the index can be reused across perturbation runs — this is
    /// what makes the 10-run sweeps of Figures 3/5 cheap.
    pub fn match_index(&self, queries: &[CountQuery]) -> Vec<Vec<u32>> {
        queries
            .iter()
            .map(|q| match self.key_index.select_bitmap(q.na_pattern()) {
                None => (0..self.keys.len() as u32).collect(),
                Some(matching) => matching.iter_ones().collect(),
            })
            .collect()
    }

    /// `(support, observed)` using a precomputed match index entry.
    pub fn support_and_observed_indexed(&self, query: &CountQuery, matching: &[u32]) -> (u64, u64) {
        let sa = query.sa_value() as usize;
        let mut support = 0u64;
        let mut observed = 0u64;
        for &g in matching {
            support += self.sizes[g as usize];
            observed += self.hists[g as usize][sa];
        }
        (support, observed)
    }

    /// The Section-6 estimate `est = |S*| · F′` for the query.
    pub fn estimate(&self, query: &CountQuery, p: f64) -> f64 {
        let (support, observed) = self.support_and_observed(query);
        if support == 0 {
            return 0.0;
        }
        support as f64 * reconstruct_frequency(observed, support, p, self.m)
    }

    /// As [`GroupedView::estimate`] but through a match-index entry.
    pub fn estimate_indexed(&self, query: &CountQuery, matching: &[u32], p: f64) -> f64 {
        let (support, observed) = self.support_and_observed_indexed(query, matching);
        if support == 0 {
            return 0.0;
        }
        support as f64 * reconstruct_frequency(observed, support, p, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::SaSpec;
    use crate::sps::{uniform_perturb, up_histograms};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rp_stats::summary::relative_error;
    use rp_table::{Attribute, Schema, TableBuilder};

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    fn demo_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("G", ["a", "b"]),
            Attribute::new("J", ["x", "y"]),
            Attribute::with_anonymous_domain("SA", 4),
        ]);
        let mut b = TableBuilder::new(schema);
        // Group (a, x): 1200 records, SA 0 at 50%.
        for i in 0..1200u32 {
            b.push_codes(&[0, 0, (i % 2) * 2]).unwrap();
        }
        // Group (b, y): 800 records, SA 1 at 75%.
        for i in 0..800u32 {
            b.push_codes(&[1, 1, if i % 4 == 0 { 3 } else { 1 }])
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn scan_estimate_is_close_on_large_support() {
        let t = demo_table();
        let spec = SaSpec::new(&t, 2);
        let mut rng = StdRng::seed_from_u64(51);
        let perturbed = uniform_perturb(&mut rng, &t, &spec, 0.5);
        let q = CountQuery::new(vec![(0, 0)], 2, 0).expect("valid count query"); // G=a ∧ SA=0: 600
        let est = estimate_by_scan(&perturbed, &q, 0.5);
        assert!(relative_error(est, 600.0) < 0.15, "est = {est}");
    }

    #[test]
    fn grouped_view_matches_scan_exactly() {
        // The two strategies must agree answer-by-answer on the same D*.
        let t = demo_table();
        let spec = SaSpec::new(&t, 2);
        let groups = PersonalGroups::build(&t, spec.clone());
        let mut rng = StdRng::seed_from_u64(52);
        let perturbed = uniform_perturb(&mut rng, &t, &spec, 0.5);
        let view = GroupedView::from_perturbed_table(&groups, &perturbed);
        for q in [
            CountQuery::new(vec![(0, 0)], 2, 0).expect("valid count query"),
            CountQuery::new(vec![(0, 1), (1, 1)], 2, 1).expect("valid count query"),
            CountQuery::new(vec![], 2, 3).expect("valid count query"),
        ] {
            let scan = estimate_by_scan(&perturbed, &q, 0.5);
            let grouped = view.estimate(&q, 0.5);
            assert_close(grouped, scan, 1e-9);
        }
    }

    #[test]
    fn histogram_built_view_counts_support() {
        let t = demo_table();
        let spec = SaSpec::new(&t, 2);
        let groups = PersonalGroups::build(&t, spec);
        let mut rng = StdRng::seed_from_u64(53);
        let hists = up_histograms(&mut rng, &groups, 0.5);
        let view = GroupedView::from_histograms(&groups, hists);
        assert_eq!(view.total_records(), 2000);
        let q = CountQuery::new(vec![(0, 0)], 2, 0).expect("valid count query");
        let (support, _) = view.support_and_observed(&q);
        assert_eq!(support, 1200, "support is exact: NA never perturbed");
    }

    #[test]
    fn match_index_agrees_with_direct_answering() {
        let t = demo_table();
        let spec = SaSpec::new(&t, 2);
        let groups = PersonalGroups::build(&t, spec);
        let mut rng = StdRng::seed_from_u64(54);
        let view = GroupedView::from_histograms(&groups, up_histograms(&mut rng, &groups, 0.3));
        let queries = vec![
            CountQuery::new(vec![(0, 0)], 2, 0).expect("valid count query"),
            CountQuery::new(vec![(1, 1)], 2, 1).expect("valid count query"),
            CountQuery::new(vec![(0, 1), (1, 0)], 2, 2).expect("valid count query"), // empty group
        ];
        let index = view.match_index(&queries);
        for (q, matching) in queries.iter().zip(&index) {
            assert_close(
                view.estimate_indexed(q, matching, 0.3),
                view.estimate(q, 0.3),
                1e-12,
            );
        }
    }

    #[test]
    fn empty_support_estimates_zero() {
        let t = demo_table();
        let spec = SaSpec::new(&t, 2);
        let groups = PersonalGroups::build(&t, spec.clone());
        let mut rng = StdRng::seed_from_u64(55);
        let perturbed = uniform_perturb(&mut rng, &t, &spec, 0.5);
        let view = GroupedView::from_perturbed_table(&groups, &perturbed);
        // G=a ∧ J=y never occurs.
        let q = CountQuery::new(vec![(0, 0), (1, 1)], 2, 0).expect("valid count query");
        assert_eq!(estimate_by_scan(&perturbed, &q, 0.5), 0.0);
        assert_eq!(view.estimate(&q, 0.5), 0.0);
    }

    #[test]
    fn estimator_is_unbiased_across_runs() {
        let t = demo_table();
        let spec = SaSpec::new(&t, 2);
        let groups = PersonalGroups::build(&t, spec);
        let q = CountQuery::new(vec![(1, 1)], 2, 1).expect("valid count query"); // J=y ∧ SA=1: 600
        let mut rng = StdRng::seed_from_u64(56);
        let runs = 500;
        let mut mean = 0.0;
        for _ in 0..runs {
            let view = GroupedView::from_histograms(&groups, up_histograms(&mut rng, &groups, 0.4));
            mean += view.estimate(&q, 0.4) / runs as f64;
        }
        assert_close(mean, 600.0, 10.0);
    }

    #[test]
    fn bitmap_matching_equals_reference_key_scan() {
        let t = demo_table();
        let spec = SaSpec::new(&t, 2);
        let groups = PersonalGroups::build(&t, spec);
        let mut rng = StdRng::seed_from_u64(57);
        let view = GroupedView::from_histograms(&groups, up_histograms(&mut rng, &groups, 0.5));
        let queries = [
            CountQuery::new(vec![(0, 0)], 2, 0).expect("valid count query"),
            CountQuery::new(vec![(0, 1), (1, 1)], 2, 1).expect("valid count query"),
            CountQuery::new(vec![], 2, 3).expect("valid count query"),
            CountQuery::new(vec![(0, 1), (1, 0)], 2, 2).expect("valid count query"),
        ];
        for q in &queries {
            // Reference: the row-at-a-time key scan the bitmaps replaced.
            let sa = q.sa_value() as usize;
            let mut support = 0u64;
            let mut observed = 0u64;
            for ((key, hist), &size) in view.keys.iter().zip(&view.hists).zip(&view.sizes) {
                if q.na_pattern().matches_key(&view.na_attrs, key) {
                    support += size;
                    observed += hist[sa];
                }
            }
            assert_eq!(view.support_and_observed(q), (support, observed), "{q:?}");
        }
        let index = view.match_index(&queries);
        for (q, matching) in queries.iter().zip(&index) {
            let reference: Vec<u32> = view
                .keys
                .iter()
                .enumerate()
                .filter(|(_, key)| q.na_pattern().matches_key(&view.na_attrs, key))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(matching, &reference, "{q:?}");
        }
    }

    #[test]
    fn sharded_view_construction_is_identical() {
        let t = demo_table();
        let spec = SaSpec::new(&t, 2);
        let groups = PersonalGroups::build(&t, spec);
        let mut rng = StdRng::seed_from_u64(58);
        let hists = up_histograms(&mut rng, &groups, 0.5);
        let reference = GroupedView::from_histograms(&groups, hists.clone());
        for shards in [2, 4, 16] {
            for threads in [1, 3] {
                let sharded =
                    GroupedView::from_histograms_sharded(&groups, hists.clone(), shards, threads);
                assert_eq!(reference, sharded, "shards={shards} threads={threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "one histogram per personal group")]
    fn misaligned_histograms_panic() {
        let t = demo_table();
        let spec = SaSpec::new(&t, 2);
        let groups = PersonalGroups::build(&t, spec);
        GroupedView::from_histograms(&groups, vec![vec![0; 4]]);
    }
}
