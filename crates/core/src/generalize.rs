//! Generalized personal groups (Section 3.4): merging public-attribute
//! values that have the same impact on the sensitive attribute.
//!
//! For each public attribute `Ai`, every pair of domain values `(xi, xi′)`
//! is submitted to the two-binned χ² test of Equation 4 over their
//! conditional SA histograms. Pairs for which the test *fails to disprove*
//! the same-distribution null hypothesis are connected in a graph, and each
//! connected component is merged into one generalized value. After this
//! preprocessing, every surviving value of `Ai` has a distinct impact on
//! SA, which restores the argument that aggregate groups are not
//! representative of any individual (Tables 4 and 5 measure the effect).

use rp_stats::chi2::{binned_chi2_test, BinnedTestResult};
use rp_stats::gtest::binned_g_test;
use rp_table::{AttrId, Attribute, Column, CountQuery, Schema, Table};

use crate::groups::SaSpec;

/// Which two-binned-distribution test decides whether two attribute values
/// share an SA impact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeTest {
    /// The paper's Equation-4 χ² statistic.
    #[default]
    Chi2,
    /// The log-likelihood-ratio (G) test — same null distribution,
    /// provided as an extension ablation.
    GTest,
}

impl MergeTest {
    fn run(self, o: &[u64], o2: &[u64], alpha: f64) -> Option<BinnedTestResult> {
        match self {
            MergeTest::Chi2 => binned_chi2_test(o, o2, alpha),
            MergeTest::GTest => binned_g_test(o, o2, alpha),
        }
    }
}

/// Disjoint-set forest used to merge attribute values into components.
#[derive(Debug, Clone)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins, so component representatives
            // are the smallest original codes.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// The per-attribute code translation produced by the merge pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeGeneralization {
    /// The attribute this mapping applies to.
    pub attr: AttrId,
    /// `mapping[old_code] = new_code` into the generalized domain.
    pub mapping: Vec<u32>,
    /// The generalized attribute (new name-preserving dictionary).
    pub generalized: Attribute,
}

impl AttributeGeneralization {
    /// Size of the generalized domain.
    pub fn new_domain_size(&self) -> usize {
        self.generalized.domain_size()
    }
}

/// The full table generalization: one mapping per public attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Generalization {
    per_attr: Vec<AttributeGeneralization>,
    sa: AttrId,
    significance: f64,
}

impl Generalization {
    /// Builds the generalization for `table` under `spec`, testing every
    /// pair of values of every public attribute at the given significance
    /// (the paper fixes 0.05) with `df = m`.
    ///
    /// Values that never occur in the data carry no evidence of a distinct
    /// SA impact; the χ² test returns `None` for them and they are merged
    /// with every tested partner (equivalently: into one catch-all
    /// component).
    ///
    /// # Panics
    ///
    /// Panics unless `significance ∈ (0, 1)`.
    pub fn fit(table: &Table, spec: &SaSpec, significance: f64) -> Self {
        Self::fit_with(table, spec, significance, MergeTest::Chi2)
    }

    /// As [`Generalization::fit`] but with an explicit choice of the
    /// two-binned test (ablation: χ² vs G-test).
    ///
    /// # Panics
    ///
    /// Panics unless `significance ∈ (0, 1)`.
    pub fn fit_with(table: &Table, spec: &SaSpec, significance: f64, test: MergeTest) -> Self {
        assert!(
            significance > 0.0 && significance < 1.0,
            "significance must lie in (0, 1), got {significance}"
        );
        let per_attr = spec
            .na()
            .iter()
            .map(|&attr| Self::fit_attribute(table, spec, attr, significance, test))
            .collect();
        Self {
            per_attr,
            sa: spec.sa(),
            significance,
        }
    }

    fn fit_attribute(
        table: &Table,
        spec: &SaSpec,
        attr: AttrId,
        significance: f64,
        test: MergeTest,
    ) -> AttributeGeneralization {
        let domain = table.schema().attribute(attr).domain_size();
        let m = spec.m();
        // Conditional SA histogram per attribute value: O_i of Section 3.4.
        let mut hists = vec![vec![0u64; m]; domain];
        let value_col = table.column(attr).codes();
        let sa_col = table.column(spec.sa()).codes();
        for (v, s) in value_col.iter().zip(sa_col) {
            hists[*v as usize][*s as usize] += 1;
        }
        // Pairwise tests; connect when the null is NOT rejected.
        let mut uf = UnionFind::new(domain);
        for a in 0..domain {
            for b in a + 1..domain {
                match test.run(&hists[a], &hists[b], significance) {
                    Some(result) if result.rejects_null => {}
                    // Failing to disprove the null — or having no data to
                    // test — merges the pair.
                    _ => uf.union(a, b),
                }
            }
        }
        // Components → new codes in order of their smallest member.
        let root_of: Vec<usize> = (0..domain).map(|v| uf.find(v)).collect();
        let mut roots: Vec<usize> = root_of.clone();
        roots.sort_unstable();
        roots.dedup();
        let mapping: Vec<u32> = root_of
            .iter()
            .map(|r| roots.binary_search(r).expect("root present") as u32)
            .collect();
        // Name each generalized value after its members.
        let dict = table.schema().attribute(attr).dictionary();
        let names: Vec<String> = roots
            .iter()
            .map(|&root| {
                let members: Vec<&str> = (0..domain)
                    .filter(|&v| root_of[v] == root)
                    .map(|v| dict.value(v as u32).expect("code in domain"))
                    .collect();
                if members.len() <= 3 {
                    members.join("|")
                } else {
                    format!("{}|{}|…({} values)", members[0], members[1], members.len())
                }
            })
            .collect();
        AttributeGeneralization {
            attr,
            mapping,
            generalized: Attribute::new(table.schema().attribute(attr).name(), names),
        }
    }

    /// The per-attribute generalizations, in `spec.na()` order.
    pub fn attributes(&self) -> &[AttributeGeneralization] {
        &self.per_attr
    }

    /// The significance level used for the χ² tests.
    pub fn significance(&self) -> f64 {
        self.significance
    }

    /// Translates an original `(attr, code)` pair to the generalized code.
    /// Codes of the SA attribute (and any attribute not generalized) pass
    /// through unchanged.
    pub fn translate(&self, attr: AttrId, code: u32) -> u32 {
        self.per_attr
            .iter()
            .find(|g| g.attr == attr)
            .map_or(code, |g| g.mapping[code as usize])
    }

    /// Rewrites a table onto the generalized schema (the SA column is
    /// untouched).
    pub fn apply(&self, table: &Table) -> Table {
        let mut schema = table.schema().clone();
        for g in &self.per_attr {
            schema = schema.with_attribute_replaced(g.attr, g.generalized.clone());
        }
        let columns: Vec<Column> = (0..table.schema().arity())
            .map(|attr| match self.per_attr.iter().find(|g| g.attr == attr) {
                Some(g) => Column::from_codes(
                    table
                        .column(attr)
                        .codes()
                        .iter()
                        .map(|&c| g.mapping[c as usize])
                        .collect(),
                ),
                None => table.column(attr).clone(),
            })
            .collect();
        Table::from_columns(schema, columns).expect("mapping preserves domains")
    }

    /// Rewrites a count query posed on original values so it can be
    /// answered on the generalized table (Section 6 generates the query
    /// pool on original values, then replaces them with aggregated values).
    pub fn translate_query(&self, query: &CountQuery) -> CountQuery {
        query.map_codes(|attr, code| self.translate(attr, code))
    }

    /// The generalized schema derived from `schema`.
    pub fn generalized_schema(&self, schema: &Schema) -> Schema {
        let mut out = schema.clone();
        for g in &self.per_attr {
            out = out.with_attribute_replaced(g.attr, g.generalized.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::PersonalGroups;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rp_table::{Attribute, Schema, TableBuilder};

    /// Education has 4 raw values but only 2 distinct SA profiles:
    /// {e0, e1} → mostly sa_0, {e2, e3} → mostly sa_1.
    fn latent_table(rows_per_value: usize) -> Table {
        let schema = Schema::new(vec![
            Attribute::with_anonymous_domain("Edu", 4),
            Attribute::with_anonymous_domain("SA", 3),
        ]);
        let mut rng = StdRng::seed_from_u64(77);
        let mut b = TableBuilder::new(schema);
        for edu in 0u32..4 {
            let profile: [f64; 3] = if edu < 2 {
                [0.8, 0.1, 0.1]
            } else {
                [0.1, 0.1, 0.8]
            };
            for _ in 0..rows_per_value {
                let r: f64 = rng.gen();
                let sa = if r < profile[0] {
                    0
                } else if r < profile[0] + profile[1] {
                    1
                } else {
                    2
                };
                b.push_codes(&[edu, sa]).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn merges_values_with_same_profile() {
        let t = latent_table(2000);
        let spec = SaSpec::new(&t, 1);
        let g = Generalization::fit(&t, &spec, 0.05);
        let edu = &g.attributes()[0];
        assert_eq!(
            edu.new_domain_size(),
            2,
            "four values collapse to two profiles"
        );
        assert_eq!(edu.mapping[0], edu.mapping[1]);
        assert_eq!(edu.mapping[2], edu.mapping[3]);
        assert_ne!(edu.mapping[0], edu.mapping[2]);
    }

    #[test]
    fn apply_rewrites_table_and_schema() {
        let t = latent_table(2000);
        let spec = SaSpec::new(&t, 1);
        let g = Generalization::fit(&t, &spec, 0.05);
        let t2 = g.apply(&t);
        assert_eq!(t2.rows(), t.rows());
        assert_eq!(t2.schema().attribute(0).domain_size(), 2);
        // SA untouched.
        assert_eq!(t2.histogram(1).unwrap(), t.histogram(1).unwrap());
        // Personal groups shrink from 4 to 2.
        let groups_before = PersonalGroups::build(&t, spec.clone());
        let spec2 = SaSpec::new(&t2, 1);
        let groups_after = PersonalGroups::build(&t2, spec2);
        assert_eq!(groups_before.len(), 4);
        assert_eq!(groups_after.len(), 2);
    }

    #[test]
    fn distinct_profiles_survive() {
        // Every value gets a clearly different profile — nothing merges.
        let schema = Schema::new(vec![
            Attribute::with_anonymous_domain("A", 3),
            Attribute::with_anonymous_domain("SA", 3),
        ]);
        let mut b = TableBuilder::new(schema);
        for v in 0u32..3 {
            for _ in 0..1000 {
                b.push_codes(&[v, v]).unwrap(); // value v implies SA v
            }
        }
        let t = b.build();
        let spec = SaSpec::new(&t, 1);
        let g = Generalization::fit(&t, &spec, 0.05);
        assert_eq!(g.attributes()[0].new_domain_size(), 3);
    }

    #[test]
    fn unused_values_fold_away() {
        // Domain has 3 values but only one occurs: all merge into one.
        let schema = Schema::new(vec![
            Attribute::with_anonymous_domain("A", 3),
            Attribute::with_anonymous_domain("SA", 2),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..100 {
            b.push_codes(&[0, (i % 2) as u32]).unwrap();
        }
        let t = b.build();
        let spec = SaSpec::new(&t, 1);
        let g = Generalization::fit(&t, &spec, 0.05);
        assert_eq!(g.attributes()[0].new_domain_size(), 1);
    }

    #[test]
    fn translate_query_rewrites_na_codes() {
        let t = latent_table(2000);
        let spec = SaSpec::new(&t, 1);
        let g = Generalization::fit(&t, &spec, 0.05);
        let q = CountQuery::new(vec![(0, 3)], 1, 2).expect("valid count query");
        let translated = g.translate_query(&q);
        assert_eq!(translated.sa_value(), 2);
        // Edu_3's generalized code must be the component of {e2, e3}.
        let expected = g.translate(0, 3);
        let got = match translated.na_pattern().terms()[0].1 {
            rp_table::Term::Value(c) => c,
            rp_table::Term::Wildcard => panic!("expected a value"),
        };
        assert_eq!(got, expected);
    }

    #[test]
    fn counts_preserved_under_generalized_queries() {
        // A query on a merged value set equals the sum of the original
        // per-value counts.
        let t = latent_table(500);
        let spec = SaSpec::new(&t, 1);
        let g = Generalization::fit(&t, &spec, 0.05);
        let t2 = g.apply(&t);
        let raw_sum: u64 = (0u32..2)
            .map(|edu| {
                CountQuery::new(vec![(0, edu)], 1, 0)
                    .expect("valid count query")
                    .answer(&t)
            })
            .sum();
        let merged = CountQuery::new(vec![(0, g.translate(0, 0))], 1, 0)
            .expect("valid count query")
            .answer(&t2);
        assert_eq!(merged, raw_sum);
    }

    #[test]
    fn merged_value_names_mention_members() {
        let t = latent_table(2000);
        let spec = SaSpec::new(&t, 1);
        let g = Generalization::fit(&t, &spec, 0.05);
        let dict = g.attributes()[0].generalized.dictionary();
        let name0 = dict.value(g.translate(0, 0)).unwrap();
        assert!(name0.contains("Edu_0"), "got {name0}");
    }

    #[test]
    #[should_panic(expected = "significance must lie in (0, 1)")]
    fn bad_significance_rejected() {
        let t = latent_table(10);
        let spec = SaSpec::new(&t, 1);
        Generalization::fit(&t, &spec, 0.0);
    }

    #[test]
    fn g_test_merge_agrees_with_chi2_on_clear_structure() {
        let t = latent_table(2000);
        let spec = SaSpec::new(&t, 1);
        let chi = Generalization::fit_with(&t, &spec, 0.05, MergeTest::Chi2);
        let g = Generalization::fit_with(&t, &spec, 0.05, MergeTest::GTest);
        assert_eq!(
            chi.attributes()[0].mapping,
            g.attributes()[0].mapping,
            "both tests must recover the 2-profile structure"
        );
    }
}
