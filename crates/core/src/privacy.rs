//! The `(λ, δ)`-reconstruction-privacy criterion: Definition 3, the bound
//! conversion of Theorem 2, the Chernoff instantiation of Corollary 3, the
//! closed-form test of Corollary 4 and the group-size threshold `sg` of
//! Equation 10.
//!
//! A sensitive value with frequency `f` in a personal group `g` is
//! `(λ, δ)`-reconstruction-private when the best upper bound on
//! `Pr[(F′ − f)/f > λ]` or `Pr[(F′ − f)/f < −λ]` is still at least `δ` —
//! i.e. the adversary cannot certify a small relative error for the
//! personal reconstruction. Under the Chernoff bounds this reduces to the
//! size test `|g| <= sg`.

use crate::groups::PersonalGroups;

/// The privacy parameters `(λ, δ)` of Definition 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyParams {
    lambda: f64,
    delta: f64,
}

impl PrivacyParams {
    /// Creates the parameter pair.
    ///
    /// # Panics
    ///
    /// Panics unless `lambda > 0` and `delta ∈ (0, 1]`. (`δ = 0` would make
    /// every group trivially private and `δ > 1` is not a probability.)
    pub fn new(lambda: f64, delta: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "lambda must be positive and finite, got {lambda}"
        );
        assert!(
            delta > 0.0 && delta <= 1.0,
            "delta must lie in (0, 1], got {delta}"
        );
        Self { lambda, delta }
    }

    /// The relative-error threshold λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The probability floor δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }
}

/// Theorem 2's change of variables between the observed-count deviation `ω`
/// and the reconstructed-frequency deviation `λ`:
/// `λ = ω·µ / (|S|·p·f)`, with `µ = |S|·(f·p + (1−p)/m)`.
///
/// Because `µ` is proportional to `|S|`, the map is independent of `|S|`:
/// `λ = ω·(f·p + (1−p)/m) / (p·f)`.
///
/// # Panics
///
/// Panics if `f <= 0` or parameters are invalid.
pub fn omega_to_lambda(omega: f64, p: f64, m: usize, f: f64) -> f64 {
    assert!(f > 0.0, "frequency must be positive, got {f}");
    assert!(p > 0.0 && p < 1.0, "retention must lie in (0, 1), got {p}");
    assert!(m >= 2, "domain size must be at least 2, got {m}");
    omega * (f * p + (1.0 - p) / m as f64) / (p * f)
}

/// Inverse of [`omega_to_lambda`]: `ω = λ·p·f / (f·p + (1−p)/m)`.
///
/// # Panics
///
/// As [`omega_to_lambda`].
pub fn lambda_to_omega(lambda: f64, p: f64, m: usize, f: f64) -> f64 {
    assert!(f > 0.0, "frequency must be positive, got {f}");
    assert!(p > 0.0 && p < 1.0, "retention must lie in (0, 1), got {p}");
    assert!(m >= 2, "domain size must be at least 2, got {m}");
    lambda * p * f / (f * p + (1.0 - p) / m as f64)
}

/// The Chernoff upper bounds on the reconstruction error tails of
/// Corollary 3, for a record set of size `support` in which the value has
/// frequency `f`.
///
/// Returns `(U, Some(L))` where
/// `U = exp(−ω²µ/(2+ω))` bounds `Pr[(F′−f)/f > λ]` and
/// `L = exp(−ω²µ/2)` bounds `Pr[(F′−f)/f < −λ]`; `L` is `None` when
/// `ω > 1` (Equation 6 does not apply there).
///
/// # Panics
///
/// Panics if `support == 0`, `f <= 0`, or invalid `(λ, p, m)`.
pub fn reconstruction_error_bounds(
    lambda: f64,
    support: u64,
    f: f64,
    p: f64,
    m: usize,
) -> (f64, Option<f64>) {
    assert!(support > 0, "bounds need a non-empty record set");
    assert!(lambda > 0.0, "lambda must be positive, got {lambda}");
    let omega = lambda_to_omega(lambda, p, m, f);
    let mu = support as f64 * (f * p + (1.0 - p) / m as f64);
    rp_stats::bounds::chernoff_pair(omega, mu)
}

/// The maximum private group size `sg` (Equation 10), generalized to every
/// `λ > 0`.
///
/// For `ω = λ·p·f/(f·p + (1−p)/m) <= 1` (the paper's Corollary-4 range)
/// this is exactly
///
/// ```text
/// sg = −2·(f·p + (1−p)/m)·ln δ / (λ·p·f)²
/// ```
///
/// For `ω > 1`, the lower-tail Chernoff bound no longer applies and the
/// binding constraint becomes the upper tail `U`, giving
/// `sg = −(2 + ω)·ln δ / (ω²·c)` with `c = f·p + (1−p)/m`.
///
/// `f` is the frequency of the SA value under test; for a whole-group test
/// pass the group's maximum frequency (the right-hand side of Equation 9 is
/// decreasing in `f`, so the maximum is binding — Equation 10).
///
/// Returns `f64::INFINITY` when `f == 0` (a value absent from the group has
/// no reconstruction to protect).
///
/// ```
/// use rp_core::privacy::{max_group_size, PrivacyParams};
///
/// // ADULT's default setting: p = 0.5, m = 2, a group with f = 0.7 may
/// // hold at most ~131 records before uniform perturbation violates
/// // (0.3, 0.3)-reconstruction privacy.
/// let sg = max_group_size(PrivacyParams::new(0.3, 0.3), 0.5, 2, 0.7);
/// assert!((sg - 131.0).abs() < 1.0);
/// ```
///
/// # Panics
///
/// Panics on invalid `(p, m)`, negative `f`, or `f > 1`.
pub fn max_group_size(params: PrivacyParams, p: f64, m: usize, f: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "retention must lie in (0, 1), got {p}");
    assert!(m >= 2, "domain size must be at least 2, got {m}");
    assert!(
        (0.0..=1.0).contains(&f),
        "frequency must lie in [0, 1], got {f}"
    );
    if f == 0.0 {
        return f64::INFINITY;
    }
    let c = f * p + (1.0 - p) / m as f64;
    let omega = lambda_to_omega(params.lambda(), p, m, f);
    let neg_ln_delta = -params.delta().ln(); // >= 0 since delta in (0, 1]
    if omega <= 1.0 {
        // −2·c·ln δ / (λpf)²  ==  2·(−ln δ)/(ω²·c)
        2.0 * neg_ln_delta * c / (params.lambda() * p * f).powi(2)
    } else {
        (2.0 + omega) * neg_ln_delta / (omega * omega * c)
    }
}

/// Corollary 4: whether a personal group of size `size` whose maximum SA
/// frequency is `f` satisfies `(λ, δ)`-reconstruction privacy, i.e.
/// `size <= sg`.
pub fn group_is_private(params: PrivacyParams, p: f64, m: usize, f: f64, size: u64) -> bool {
    size as f64 <= max_group_size(params, p, m, f)
}

/// Per-group verdict in a [`ViolationReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupVerdict {
    /// Index of the group in the [`PersonalGroups`] it was computed from.
    pub group_index: usize,
    /// Group size `|g|`.
    pub size: u64,
    /// Maximum SA frequency `f` in the group.
    pub max_frequency: f64,
    /// The threshold `sg` of Equation 10.
    pub sg: f64,
    /// Whether the group violates the criterion (`|g| > sg`).
    pub violates: bool,
}

/// The outcome of testing every personal group of a table (the `vg`/`vr`
/// measures of Section 6).
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationReport {
    /// One verdict per personal group, in group order.
    pub verdicts: Vec<GroupVerdict>,
    /// Total records across all groups.
    pub total_records: u64,
    /// Records belonging to violating groups.
    pub violating_records: u64,
}

impl ViolationReport {
    /// Number of violating groups.
    pub fn violating_groups(&self) -> usize {
        self.verdicts.iter().filter(|v| v.violates).count()
    }

    /// `vg`: fraction of personal groups that violate the criterion.
    /// Zero when there are no groups.
    pub fn vg(&self) -> f64 {
        if self.verdicts.is_empty() {
            return 0.0;
        }
        self.violating_groups() as f64 / self.verdicts.len() as f64
    }

    /// `vr`: fraction of records contained in violating groups.
    /// Zero when the table is empty.
    pub fn vr(&self) -> f64 {
        if self.total_records == 0 {
            return 0.0;
        }
        self.violating_records as f64 / self.total_records as f64
    }

    /// Whether the whole table satisfies `(λ, δ)`-reconstruction privacy.
    pub fn is_private(&self) -> bool {
        self.violating_records == 0 && self.verdicts.iter().all(|v| !v.violates)
    }
}

/// Tests every personal group against the criterion (the "Violation" halves
/// of Figures 2 and 4 run this against uniform perturbation's intended
/// publication).
///
/// Note that reconstruction privacy is a property of the perturbation
/// *design* `(p, m, |g|, f)`, not of a particular perturbed instance
/// (Definition 3), so the test consumes the raw groups plus `p`.
pub fn check_groups(groups: &PersonalGroups, p: f64, params: PrivacyParams) -> ViolationReport {
    let m = groups.spec().m();
    let mut verdicts = Vec::with_capacity(groups.len());
    let mut total_records = 0u64;
    let mut violating_records = 0u64;
    for (i, g) in groups.groups().iter().enumerate() {
        let size = g.len() as u64;
        total_records += size;
        let f = if g.is_empty() { 0.0 } else { g.max_frequency() };
        let sg = max_group_size(params, p, m, f);
        let violates = size as f64 > sg;
        if violates {
            violating_records += size;
        }
        verdicts.push(GroupVerdict {
            group_index: i,
            size,
            max_frequency: f,
            sg,
            violates,
        });
    }
    ViolationReport {
        verdicts,
        total_records,
        violating_records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::SaSpec;
    use rp_table::{Attribute, Schema, Table, TableBuilder};

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn omega_lambda_round_trip() {
        for &(p, m, f) in &[(0.5, 2, 0.7), (0.2, 10, 0.1), (0.9, 50, 0.02)] {
            for &lambda in &[0.1, 0.3, 1.0] {
                let omega = lambda_to_omega(lambda, p, m, f);
                let back = omega_to_lambda(omega, p, m, f);
                assert_close(back, lambda, 1e-12);
            }
        }
    }

    #[test]
    fn sg_matches_equation_10_in_corollary4_range() {
        // Hand-evaluate Equation 10 and compare.
        let params = PrivacyParams::new(0.3, 0.3);
        let (p, m, f) = (0.5, 2, 0.7);
        let omega = lambda_to_omega(0.3, p, m, f);
        assert!(omega <= 1.0, "setup must stay in the Corollary-4 range");
        let c = f * p + (1.0 - p) / m as f64;
        let expected = -2.0 * c * (0.3f64).ln() / (0.3 * p * f) * (1.0 / (0.3 * p * f));
        let sg = max_group_size(params, p, m, f);
        assert_close(sg, expected, 1e-9);
    }

    #[test]
    fn sg_decreases_in_lambda_delta_and_f() {
        let base = max_group_size(PrivacyParams::new(0.3, 0.3), 0.5, 2, 0.7);
        assert!(max_group_size(PrivacyParams::new(0.4, 0.3), 0.5, 2, 0.7) < base);
        assert!(max_group_size(PrivacyParams::new(0.3, 0.4), 0.5, 2, 0.7) < base);
        assert!(max_group_size(PrivacyParams::new(0.3, 0.3), 0.5, 2, 0.8) < base);
    }

    #[test]
    fn sg_boosts_at_small_f() {
        // Figure 1's key observation: sg grows rapidly as f shrinks.
        let params = PrivacyParams::new(0.3, 0.3);
        let sg_small = max_group_size(params, 0.5, 50, 0.1);
        let sg_large = max_group_size(params, 0.5, 50, 0.9);
        assert!(
            sg_small > 10.0 * sg_large,
            "sg({sg_small}) vs sg({sg_large})"
        );
    }

    #[test]
    fn absent_value_is_always_private() {
        assert_eq!(
            max_group_size(PrivacyParams::new(0.3, 0.3), 0.5, 2, 0.0),
            f64::INFINITY
        );
    }

    #[test]
    fn delta_one_makes_everything_violate() {
        // δ = 1 ⇒ ln δ = 0 ⇒ sg = 0 ⇒ any non-empty group violates.
        let sg = max_group_size(PrivacyParams::new(0.3, 1.0), 0.5, 2, 0.7);
        assert_close(sg, 0.0, 1e-12);
        assert!(!group_is_private(
            PrivacyParams::new(0.3, 1.0),
            0.5,
            2,
            0.7,
            1
        ));
    }

    #[test]
    fn large_lambda_beyond_corollary4_uses_upper_tail() {
        // Choose f, p, m with ω > 1: λ big enough.
        let (p, m, f) = (0.9, 2, 0.9);
        let lambda = 2.0;
        let omega = lambda_to_omega(lambda, p, m, f);
        assert!(omega > 1.0, "setup: omega = {omega}");
        let params = PrivacyParams::new(lambda, 0.3);
        let sg = max_group_size(params, p, m, f);
        // Verify directly against the Chernoff upper bound: at size sg the
        // bound equals δ.
        let c = f * p + (1.0 - p) / m as f64;
        let u_at_sg = (-(omega * omega * sg * c) / (2.0 + omega)).exp();
        assert_close(u_at_sg, 0.3, 1e-9);
    }

    #[test]
    fn bounds_at_sg_equal_delta() {
        // In the Corollary-4 range, L evaluated at |S| = sg equals δ.
        let params = PrivacyParams::new(0.3, 0.3);
        let (p, m, f) = (0.5, 10, 0.4);
        let sg = max_group_size(params, p, m, f);
        let (_, l) = reconstruction_error_bounds(0.3, sg.round() as u64, f, p, m);
        assert_close(l.expect("omega <= 1 here"), 0.3, 0.01);
    }

    #[test]
    fn reconstruction_error_bounds_shrink_with_support() {
        let (u1, l1) = reconstruction_error_bounds(0.3, 100, 0.5, 0.5, 2);
        let (u2, l2) = reconstruction_error_bounds(0.3, 10_000, 0.5, 0.5, 2);
        assert!(u2 < u1);
        assert!(l2.unwrap() < l1.unwrap());
    }

    fn two_group_table(big: usize, small: usize) -> Table {
        let schema = Schema::new(vec![
            Attribute::new("G", ["a", "b"]),
            Attribute::new("SA", ["x", "y"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..big {
            let sa = if i % 10 < 7 { "x" } else { "y" }; // f = 0.7
            b.push_values(&["a", sa]).unwrap();
        }
        for i in 0..small {
            let sa = if i % 2 == 0 { "x" } else { "y" }; // f = 0.5
            b.push_values(&["b", sa]).unwrap();
        }
        b.build()
    }

    #[test]
    fn check_groups_reports_vg_and_vr() {
        let t = two_group_table(4000, 10);
        let groups = crate::groups::PersonalGroups::build(&t, SaSpec::new(&t, 1));
        let params = PrivacyParams::new(0.3, 0.3);
        let report = check_groups(&groups, 0.5, params);
        assert_eq!(report.verdicts.len(), 2);
        // The 4000-record group with f = 0.7 violates (sg ≈ 131); the
        // 10-record group (f = 0.5, sg ≈ 214) does not.
        assert_eq!(report.violating_groups(), 1);
        assert_close(report.vg(), 0.5, 1e-12);
        assert_close(report.vr(), 4000.0 / 4010.0, 1e-12);
        assert!(!report.is_private());
    }

    #[test]
    fn small_table_is_private() {
        let t = two_group_table(10, 10);
        let groups = crate::groups::PersonalGroups::build(&t, SaSpec::new(&t, 1));
        let report = check_groups(&groups, 0.5, PrivacyParams::new(0.3, 0.3));
        assert!(report.is_private());
        assert_close(report.vg(), 0.0, 1e-12);
        assert_close(report.vr(), 0.0, 1e-12);
    }

    #[test]
    fn verdicts_expose_sg_and_f() {
        let t = two_group_table(100, 50);
        let groups = crate::groups::PersonalGroups::build(&t, SaSpec::new(&t, 1));
        let report = check_groups(&groups, 0.5, PrivacyParams::new(0.3, 0.3));
        for v in &report.verdicts {
            assert!(v.sg > 0.0);
            assert!(v.max_frequency >= 0.5);
            assert_eq!(v.violates, v.size as f64 > v.sg);
        }
    }

    #[test]
    #[should_panic(expected = "delta must lie in (0, 1]")]
    fn delta_zero_rejected() {
        PrivacyParams::new(0.3, 0.0);
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn negative_lambda_rejected() {
        PrivacyParams::new(-0.1, 0.3);
    }
}
