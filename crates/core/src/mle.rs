//! Maximum-likelihood reconstruction of SA frequencies from perturbed data
//! (Theorem 1 and Lemma 2 of the paper).
//!
//! Given the observed count `O*` of a value in a perturbed record set `S*`
//! of size `|S|`, the MLE of its true frequency is the closed form of
//! Lemma 2(ii):
//!
//! ```text
//! F′ = ( O*/|S| − (1−p)/m ) / p
//! ```
//!
//! The full-vector variant `F′ = P⁻¹ · O*/|S|` is identical (Lemma 2
//! derives one from the other); both are provided and the equality is kept
//! honest by tests and an ablation bench.

use crate::matrix::PerturbationMatrix;

/// Reconstructs the frequency of a single SA value from its observed count.
///
/// This is Lemma 2(ii). The estimate is unbiased (Lemma 2(iii)) but not
/// constrained to `[0, 1]` — small supports routinely produce negative
/// estimates, which the paper keeps as-is (they are exactly what makes
/// personal reconstruction unreliable). Use [`clamp_frequency`] when a
/// proper probability is needed downstream.
///
/// ```
/// use rp_core::mle::reconstruct_frequency;
///
/// // Example 2 of the paper: p = 0.2, m = 10, observed frequency 0.2
/// // reconstructs to (0.2 − 0.08) / 0.2 = 0.6.
/// let estimate = reconstruct_frequency(20, 100, 0.2, 10);
/// assert!((estimate - 0.6).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `support == 0` — the MLE is undefined on an empty record set —
/// or on invalid `p`/`m` (see [`PerturbationMatrix::new`]).
pub fn reconstruct_frequency(observed: u64, support: u64, p: f64, m: usize) -> f64 {
    assert!(support > 0, "cannot reconstruct from an empty record set");
    // Validate (p, m) through the matrix constructor.
    let _ = PerturbationMatrix::new(p, m);
    let observed_freq = observed as f64 / support as f64;
    (observed_freq - (1.0 - p) / m as f64) / p
}

/// Reconstructs the full frequency vector from an observed histogram using
/// the closed form, value by value.
///
/// # Panics
///
/// Panics if the histogram is empty, if its total is zero, or on invalid
/// `p`/`m` parameters implied by `hist.len()`.
pub fn reconstruct_histogram(hist: &[u64], p: f64) -> Vec<f64> {
    let support: u64 = hist.iter().sum();
    assert!(support > 0, "cannot reconstruct from an empty record set");
    let m = hist.len();
    hist.iter()
        .map(|&o| reconstruct_frequency(o, support, p, m))
        .collect()
}

/// Reconstructs the frequency vector through the matrix inverse
/// `F′ = P⁻¹ · (O*/|S|)` (Theorem 1). Mathematically identical to
/// [`reconstruct_histogram`]; retained as the reference implementation and
/// ablation target.
///
/// # Panics
///
/// As [`reconstruct_histogram`].
pub fn reconstruct_histogram_via_inverse(hist: &[u64], p: f64) -> Vec<f64> {
    let support: u64 = hist.iter().sum();
    assert!(support > 0, "cannot reconstruct from an empty record set");
    let m = hist.len();
    let matrix = PerturbationMatrix::new(p, m);
    let observed: Vec<f64> = hist.iter().map(|&o| o as f64 / support as f64).collect();
    matrix.inverse(&observed)
}

/// Estimated *count* of a value in the original record set:
/// `est = |S| · F′`. This is the `est = |S*| · F′` estimator used for the
/// Section-6 count queries.
///
/// # Panics
///
/// As [`reconstruct_frequency`].
pub fn estimate_count(observed: u64, support: u64, p: f64, m: usize) -> f64 {
    support as f64 * reconstruct_frequency(observed, support, p, m)
}

/// Clamps a reconstructed frequency into `[0, 1]`.
pub fn clamp_frequency(f: f64) -> f64 {
    f.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perturb::UniformPerturbation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn closed_form_matches_example_2() {
        // Example 2: estimate of f_d is (f*_d − 0.08) / 0.2 at p = 0.2,
        // m = 10. With observed frequency 0.2 the estimate is 0.6.
        let est = reconstruct_frequency(20, 100, 0.2, 10);
        assert_close(est, (0.2 - 0.08) / 0.2, 1e-12);
    }

    #[test]
    fn closed_form_equals_matrix_inverse() {
        let hist = [37u64, 12, 5, 46];
        let a = reconstruct_histogram(&hist, 0.35);
        let b = reconstruct_histogram_via_inverse(&hist, 0.35);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_close(*x, *y, 1e-12);
        }
    }

    #[test]
    fn reconstruction_sums_to_one() {
        // The closed form preserves the simplex constraint: Σ F′ = 1
        // whenever Σ O* = |S|.
        let hist = [10u64, 20, 30, 40];
        let f = reconstruct_histogram(&hist, 0.5);
        assert_close(f.iter().sum::<f64>(), 1.0, 1e-12);
    }

    #[test]
    fn perfect_observation_reconstructs_exactly() {
        // If the observation happens to equal its expectation, the estimate
        // equals the true frequency.
        let p = 0.4;
        let m = 4;
        let f_true = 0.25;
        let support = 1000u64;
        let expected_observed = (f_true * p + (1.0 - p) / m as f64) * support as f64;
        let est = reconstruct_frequency(expected_observed.round() as u64, support, p, m);
        assert_close(est, f_true, 1e-3);
    }

    #[test]
    fn estimator_is_unbiased_monte_carlo() {
        // Lemma 2(iii): E[F′] = f. Perturb a fixed histogram many times and
        // average the estimates.
        let op = UniformPerturbation::new(0.3, 5);
        let hist = [120u64, 30, 0, 40, 10]; // f = 0.6, 0.15, 0, 0.2, 0.05
        let support: u64 = hist.iter().sum();
        let mut rng = StdRng::seed_from_u64(8);
        let runs = 20_000;
        let mut mean = [0f64; 5];
        for _ in 0..runs {
            let observed = op.perturb_histogram(&mut rng, &hist);
            let est = reconstruct_histogram(&observed, 0.3);
            for i in 0..5 {
                mean[i] += est[i] / runs as f64;
            }
        }
        for i in 0..5 {
            let f_true = hist[i] as f64 / support as f64;
            assert_close(mean[i], f_true, 0.01);
        }
    }

    #[test]
    fn negative_estimates_possible_and_clamped() {
        // Observed count far below the noise floor produces a negative MLE.
        let est = reconstruct_frequency(0, 100, 0.2, 10);
        assert!(est < 0.0);
        assert_eq!(clamp_frequency(est), 0.0);
        assert_eq!(clamp_frequency(1.7), 1.0);
        assert_eq!(clamp_frequency(0.3), 0.3);
    }

    #[test]
    fn estimate_count_scales_frequency() {
        let est = estimate_count(20, 100, 0.2, 10);
        assert_close(est, 100.0 * 0.6, 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty record set")]
    fn empty_support_panics() {
        reconstruct_frequency(0, 0, 0.5, 2);
    }

    #[test]
    #[should_panic(expected = "strictly in (0, 1)")]
    fn invalid_p_panics() {
        reconstruct_frequency(1, 10, 0.0, 2);
    }
}
