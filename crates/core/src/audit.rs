//! Publication audit: a structured, human-readable account of how a table
//! stands with respect to `(λ, δ)`-reconstruction privacy.
//!
//! [`audit`] aggregates the per-group verdicts of
//! [`crate::privacy::check_groups`] into the numbers a data owner acts on:
//! the violation rates `vg`/`vr`, the distribution of group sizes against
//! their thresholds, the worst offenders, and the expected sampling burden
//! SPS would incur.

use crate::groups::PersonalGroups;
use crate::privacy::{check_groups, PrivacyParams, ViolationReport};

/// One of the worst-offending groups in an audit.
#[derive(Debug, Clone, PartialEq)]
pub struct Offender {
    /// Index into the audited [`PersonalGroups`].
    pub group_index: usize,
    /// Group size `|g|`.
    pub size: u64,
    /// Maximum SA frequency `f`.
    pub max_frequency: f64,
    /// Threshold `sg`.
    pub sg: f64,
    /// `|g| / sg` — how far past the threshold the group sits.
    pub excess_factor: f64,
}

/// The audit result.
#[derive(Debug, Clone, PartialEq)]
pub struct PublicationAudit {
    /// The parameters audited against.
    pub params: PrivacyParams,
    /// The retention probability audited against.
    pub p: f64,
    /// The underlying per-group report.
    pub report: ViolationReport,
    /// Worst offenders by excess factor, descending (at most `top_k`).
    pub offenders: Vec<Offender>,
    /// Expected number of records SPS would sample
    /// (Σ min(|g|, sg) over violating groups).
    pub expected_sample_records: f64,
    /// Expected fraction of records that survive into samples across the
    /// whole table (1.0 when nothing violates).
    pub expected_trial_fraction: f64,
}

impl PublicationAudit {
    /// Whether the table can be published with plain perturbation.
    pub fn is_private(&self) -> bool {
        self.report.is_private()
    }
}

/// Audits `groups` against `(p, params)`, keeping the `top_k` worst
/// offenders.
pub fn audit(
    groups: &PersonalGroups,
    p: f64,
    params: PrivacyParams,
    top_k: usize,
) -> PublicationAudit {
    let report = check_groups(groups, p, params);
    let mut offenders: Vec<Offender> = report
        .verdicts
        .iter()
        .filter(|v| v.violates)
        .map(|v| Offender {
            group_index: v.group_index,
            size: v.size,
            max_frequency: v.max_frequency,
            sg: v.sg,
            excess_factor: if v.sg > 0.0 {
                v.size as f64 / v.sg
            } else {
                f64::INFINITY
            },
        })
        .collect();
    offenders.sort_by(|a, b| {
        b.excess_factor
            .partial_cmp(&a.excess_factor)
            .expect("excess factors are comparable")
    });
    offenders.truncate(top_k);
    let mut expected_sample_records = 0.0;
    let mut trial_records = 0.0;
    for v in &report.verdicts {
        if v.violates {
            let sample = v.sg.max(1.0).min(v.size as f64);
            expected_sample_records += sample;
            trial_records += sample;
        } else {
            trial_records += v.size as f64;
        }
    }
    let expected_trial_fraction = if report.total_records == 0 {
        1.0
    } else {
        trial_records / report.total_records as f64
    };
    PublicationAudit {
        params,
        p,
        report,
        offenders,
        expected_sample_records,
        expected_trial_fraction,
    }
}

/// Renders the audit as a short report.
pub fn render(a: &PublicationAudit) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Reconstruction-privacy audit (p = {}, lambda = {}, delta = {})",
        a.p,
        a.params.lambda(),
        a.params.delta()
    );
    let _ = writeln!(
        out,
        "groups: {} total, {} violating (vg = {:.2}%)",
        a.report.verdicts.len(),
        a.report.violating_groups(),
        100.0 * a.report.vg()
    );
    let _ = writeln!(
        out,
        "records: {} total, {} at risk (vr = {:.2}%)",
        a.report.total_records,
        a.report.violating_records,
        100.0 * a.report.vr()
    );
    if a.is_private() {
        let _ = writeln!(
            out,
            "verdict: PRIVATE — plain uniform perturbation suffices"
        );
    } else {
        let _ = writeln!(
            out,
            "verdict: NOT PRIVATE — SPS would keep {:.1}% of records as random trials",
            100.0 * a.expected_trial_fraction
        );
        let _ = writeln!(out, "worst offenders (|g| / sg):");
        for o in &a.offenders {
            let _ = writeln!(
                out,
                "  group #{:<6} size {:<8} f = {:.3}  sg = {:<10.1} excess x{:.1}",
                o.group_index, o.size, o.max_frequency, o.sg, o.excess_factor
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::SaSpec;
    use rp_table::{Attribute, Schema, Table, TableBuilder};

    fn demo_table(sizes: &[(usize, f64)]) -> Table {
        let schema = Schema::new(vec![
            Attribute::with_anonymous_domain("G", sizes.len()),
            Attribute::with_anonymous_domain("SA", 2),
        ]);
        let mut b = TableBuilder::new(schema);
        for (g, &(n, f)) in sizes.iter().enumerate() {
            let ones = (n as f64 * (1.0 - f)).round() as usize;
            for i in 0..n {
                b.push_codes(&[g as u32, u32::from(i < ones)]).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn private_table_audit() {
        let t = demo_table(&[(20, 0.6), (30, 0.5)]);
        let groups = PersonalGroups::build(&t, SaSpec::new(&t, 1));
        let a = audit(&groups, 0.5, PrivacyParams::new(0.3, 0.3), 5);
        assert!(a.is_private());
        assert!(a.offenders.is_empty());
        assert!((a.expected_trial_fraction - 1.0).abs() < 1e-12);
        assert!(render(&a).contains("PRIVATE"));
    }

    #[test]
    fn offenders_sorted_by_excess() {
        let t = demo_table(&[(5000, 0.7), (1000, 0.9), (20, 0.5)]);
        let groups = PersonalGroups::build(&t, SaSpec::new(&t, 1));
        let a = audit(&groups, 0.5, PrivacyParams::new(0.3, 0.3), 5);
        assert!(!a.is_private());
        assert_eq!(a.report.violating_groups(), 2);
        assert_eq!(a.offenders.len(), 2);
        assert!(a.offenders[0].excess_factor >= a.offenders[1].excess_factor);
        for o in &a.offenders {
            assert!(o.size as f64 > o.sg);
        }
    }

    #[test]
    fn top_k_truncates() {
        let t = demo_table(&[(5000, 0.7), (4000, 0.7), (3000, 0.7)]);
        let groups = PersonalGroups::build(&t, SaSpec::new(&t, 1));
        let a = audit(&groups, 0.5, PrivacyParams::new(0.3, 0.3), 2);
        assert_eq!(a.offenders.len(), 2);
        assert_eq!(a.report.violating_groups(), 3);
    }

    #[test]
    fn trial_fraction_reflects_sampling() {
        // One violating group of 5000 with sg ≈ 131 next to 20 compliant
        // records: the surviving trial fraction is ≈ (131 + 20) / 5020.
        let t = demo_table(&[(5000, 0.7), (20, 0.5)]);
        let groups = PersonalGroups::build(&t, SaSpec::new(&t, 1));
        let a = audit(&groups, 0.5, PrivacyParams::new(0.3, 0.3), 5);
        let sg = crate::privacy::max_group_size(PrivacyParams::new(0.3, 0.3), 0.5, 2, 0.7);
        let expected = (sg + 20.0) / 5020.0;
        assert!((a.expected_trial_fraction - expected).abs() < 1e-9);
        assert!((a.expected_sample_records - sg).abs() < 1e-9);
    }

    #[test]
    fn render_lists_offenders() {
        let t = demo_table(&[(5000, 0.7)]);
        let groups = PersonalGroups::build(&t, SaSpec::new(&t, 1));
        let a = audit(&groups, 0.5, PrivacyParams::new(0.3, 0.3), 3);
        let text = render(&a);
        assert!(text.contains("NOT PRIVATE"));
        assert!(text.contains("worst offenders"));
        assert!(text.contains("excess"));
    }
}
