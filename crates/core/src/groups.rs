//! The personal / aggregate group model of Section 3.2.
//!
//! Fixing one attribute as `SA` and the rest as `NA`, a *personal group*
//! `D(x1, ..., xn)` collects all records agreeing on every public attribute;
//! an *aggregate group* leaves at least one attribute wild. Personal groups
//! are the unit at which reconstruction privacy is tested and enforced, so
//! this module materializes them together with their SA histograms.

use rp_table::{
    group_by_hash_sharded, group_by_sort, parallel::run_shards, AttrId, Pattern, Table,
};

/// Declares which attribute of a table is sensitive; all others are public.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaSpec {
    sa: AttrId,
    na: Vec<AttrId>,
    m: usize,
}

impl SaSpec {
    /// Creates the spec for a table, marking `sa` sensitive and every other
    /// attribute public.
    ///
    /// # Panics
    ///
    /// Panics if `sa` is out of range, if the table has no public attribute
    /// left over, or if the SA domain has fewer than 2 values (the paper
    /// assumes `m > 2`; the algebra needs `m >= 2`).
    pub fn new(table: &Table, sa: AttrId) -> Self {
        let arity = table.schema().arity();
        assert!(
            sa < arity,
            "SA attribute {sa} out of range for arity {arity}"
        );
        assert!(arity >= 2, "need at least one public attribute besides SA");
        let m = table.schema().attribute(sa).domain_size();
        assert!(m >= 2, "SA domain must have at least 2 values, got {m}");
        Self {
            sa,
            na: (0..arity).filter(|&a| a != sa).collect(),
            m,
        }
    }

    /// The sensitive attribute.
    pub fn sa(&self) -> AttrId {
        self.sa
    }

    /// The public attributes, in schema order.
    pub fn na(&self) -> &[AttrId] {
        &self.na
    }

    /// SA domain size `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Whether a selection pattern over the public attributes identifies a
    /// personal group (every public attribute pinned, none wild).
    pub fn is_personal_pattern(&self, pattern: &Pattern) -> bool {
        !pattern.has_wildcard()
            && self
                .na
                .iter()
                .all(|&a| pattern.terms().iter().any(|&(pa, _)| pa == a))
    }
}

/// One personal group with its SA statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersonalGroup {
    /// Codes of the public attributes (in [`SaSpec::na`] order).
    pub key: Vec<u32>,
    /// Row indices of the group's members in the source table.
    pub rows: Vec<u32>,
    /// Histogram of SA values within the group.
    pub sa_hist: Vec<u64>,
}

impl PersonalGroup {
    /// Group size `|g|`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the group has no members.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Frequency (in fraction) of SA value `code` within the group.
    ///
    /// # Panics
    ///
    /// Panics if the group is empty or `code` out of range.
    pub fn frequency(&self, code: usize) -> f64 {
        assert!(!self.is_empty(), "frequency undefined on an empty group");
        self.sa_hist[code] as f64 / self.len() as f64
    }

    /// The maximum SA frequency `f` in the group — the quantity the
    /// group-size threshold `sg` of Equation 10 is computed from.
    ///
    /// # Panics
    ///
    /// Panics if the group is empty.
    pub fn max_frequency(&self) -> f64 {
        assert!(!self.is_empty(), "frequency undefined on an empty group");
        let max = *self.sa_hist.iter().max().expect("non-empty histogram");
        max as f64 / self.len() as f64
    }
}

/// All personal groups of a table under an [`SaSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersonalGroups {
    spec: SaSpec,
    total_rows: usize,
    groups: Vec<PersonalGroup>,
}

impl PersonalGroups {
    /// Partitions `table` into personal groups by sorting on the public
    /// attributes (the paper's prescribed strategy) and computes each
    /// group's SA histogram in the same pass.
    pub fn build(table: &Table, spec: SaSpec) -> Self {
        let grouping = group_by_sort(table, spec.na());
        let groups = grouping
            .groups()
            .iter()
            .map(|g| PersonalGroup {
                key: g.key.clone(),
                sa_hist: table.histogram_over(spec.sa(), &g.rows),
                rows: g.rows.clone(),
            })
            .collect();
        Self {
            spec,
            total_rows: table.rows(),
            groups,
        }
    }

    /// Sharded construction: rows are dealt into `shards` hash-disjoint
    /// shards by group-key hash, each shard is grouped independently —
    /// optionally on up to `threads` scoped workers — and the per-shard
    /// results are merged back into global key order. SA histograms are
    /// computed per contiguous group chunk on the same worker pool.
    ///
    /// Personal groups have no cross-group dependencies (UP and SPS treat
    /// each group in isolation), so this is embarrassingly parallel; the
    /// result is **identical** to [`PersonalGroups::build`] for every
    /// combination of `shards` and `threads`. Quantified by the
    /// `grouping_sharded` bench group.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn build_sharded(table: &Table, spec: SaSpec, shards: usize, threads: usize) -> Self {
        let grouping = group_by_hash_sharded(table, spec.na(), shards, threads);
        let groups = grouping.groups();
        // Per-group SA histograms over contiguous chunks, one chunk per
        // shard slot: deterministic (chunking never reorders groups) and
        // thread-safe (chunks are disjoint).
        let chunk_count = shards.min(groups.len()).max(1);
        let chunk_len = groups.len().div_ceil(chunk_count);
        let sa = spec.sa();
        let hist_chunks = run_shards(chunk_count, threads, |c| {
            let start = (c * chunk_len).min(groups.len());
            let end = ((c + 1) * chunk_len).min(groups.len());
            groups[start..end]
                .iter()
                .map(|g| table.histogram_over(sa, &g.rows))
                .collect::<Vec<_>>()
        });
        let groups = groups
            .iter()
            .zip(hist_chunks.into_iter().flatten())
            .map(|(g, sa_hist)| PersonalGroup {
                key: g.key.clone(),
                sa_hist,
                rows: g.rows.clone(),
            })
            .collect();
        Self {
            spec,
            total_rows: table.rows(),
            groups,
        }
    }

    /// The SA/NA spec the groups were built under.
    pub fn spec(&self) -> &SaSpec {
        &self.spec
    }

    /// All groups, sorted by key.
    pub fn groups(&self) -> &[PersonalGroup] {
        &self.groups
    }

    /// Number of personal groups `|G|`.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups (empty table).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Total number of records `|D|` in the grouped table.
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Average personal-group size `|D| / |G|` (Tables 4 and 5).
    ///
    /// # Panics
    ///
    /// Panics if there are no groups.
    pub fn average_size(&self) -> f64 {
        assert!(!self.is_empty(), "no groups to average over");
        self.total_rows as f64 / self.len() as f64
    }

    /// The groups whose keys satisfy `pattern` (an aggregate group is a
    /// union of personal groups).
    pub fn matching<'a>(
        &'a self,
        pattern: &'a Pattern,
    ) -> impl Iterator<Item = &'a PersonalGroup> + 'a {
        let attrs = self.spec.na().to_vec();
        self.groups
            .iter()
            .filter(move |g| pattern.matches_key(&attrs, &g.key))
    }

    /// Sums `(support, sa_hist)` over the personal groups matching
    /// `pattern`: the size and SA histogram of the corresponding aggregate
    /// group.
    pub fn aggregate_histogram(&self, pattern: &Pattern) -> (u64, Vec<u64>) {
        let mut support = 0u64;
        let mut hist = vec![0u64; self.spec.m()];
        for g in self.matching(pattern) {
            support += g.len() as u64;
            for (h, &c) in hist.iter_mut().zip(&g.sa_hist) {
                *h += c;
            }
        }
        (support, hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_table::{Attribute, Schema, TableBuilder, Term};

    /// Gender × Job with Disease sensitive — the running Example 2 shape.
    fn demo_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("Gender", ["male", "female"]),
            Attribute::new("Job", ["eng", "doc"]),
            Attribute::new("Disease", ["flu", "hiv", "bc"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for row in [
            ["male", "eng", "flu"],
            ["male", "eng", "flu"],
            ["male", "eng", "hiv"],
            ["male", "doc", "bc"],
            ["female", "eng", "bc"],
            ["female", "eng", "bc"],
            ["female", "eng", "flu"],
        ] {
            b.push_values(&row).unwrap();
        }
        b.build()
    }

    #[test]
    fn spec_partitions_attributes() {
        let t = demo_table();
        let spec = SaSpec::new(&t, 2);
        assert_eq!(spec.sa(), 2);
        assert_eq!(spec.na(), &[0, 1]);
        assert_eq!(spec.m(), 3);
    }

    #[test]
    fn groups_cover_table_disjointly() {
        let t = demo_table();
        let groups = PersonalGroups::build(&t, SaSpec::new(&t, 2));
        assert_eq!(groups.len(), 3); // (m,e), (m,d), (f,e)
        let total: usize = groups.groups().iter().map(PersonalGroup::len).sum();
        assert_eq!(total, t.rows());
        assert_eq!(groups.total_rows(), 7);
    }

    #[test]
    fn sa_histograms_match_members() {
        let t = demo_table();
        let groups = PersonalGroups::build(&t, SaSpec::new(&t, 2));
        // Key [0, 0] = male engineers: 2 flu, 1 hiv.
        let me = groups
            .groups()
            .iter()
            .find(|g| g.key == vec![0, 0])
            .unwrap();
        assert_eq!(me.sa_hist, vec![2, 1, 0]);
        assert!((me.frequency(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((me.max_frequency() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_histogram_unions_personal_groups() {
        let t = demo_table();
        let groups = PersonalGroups::build(&t, SaSpec::new(&t, 2));
        // Pattern: Job = eng (Gender wild) — D(⁎, eng).
        let pattern = Pattern::new(vec![(0, Term::Wildcard), (1, Term::Value(0))]);
        let (support, hist) = groups.aggregate_histogram(&pattern);
        assert_eq!(support, 6);
        assert_eq!(hist, vec![3, 1, 2]);
    }

    #[test]
    fn matching_with_empty_pattern_yields_all() {
        let t = demo_table();
        let groups = PersonalGroups::build(&t, SaSpec::new(&t, 2));
        let all = Pattern::new(vec![]);
        assert_eq!(groups.matching(&all).count(), groups.len());
        let (support, _) = groups.aggregate_histogram(&all);
        assert_eq!(support, 7);
    }

    #[test]
    fn is_personal_pattern_detects_full_specification() {
        let t = demo_table();
        let spec = SaSpec::new(&t, 2);
        let personal = Pattern::from_codes(&[0, 1], &[0, 0]);
        assert!(spec.is_personal_pattern(&personal));
        let aggregate = Pattern::new(vec![(0, Term::Wildcard), (1, Term::Value(0))]);
        assert!(!spec.is_personal_pattern(&aggregate));
        let partial = Pattern::from_codes(&[1], &[0]);
        assert!(!spec.is_personal_pattern(&partial));
    }

    #[test]
    fn average_size() {
        let t = demo_table();
        let groups = PersonalGroups::build(&t, SaSpec::new(&t, 2));
        assert!((groups.average_size() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn build_sharded_matches_build_for_all_k_and_threads() {
        let t = demo_table();
        let spec = SaSpec::new(&t, 2);
        let reference = PersonalGroups::build(&t, spec.clone());
        for shards in [1, 2, 3, 8, 32] {
            for threads in [1, 4] {
                let sharded = PersonalGroups::build_sharded(&t, spec.clone(), shards, threads);
                assert_eq!(reference, sharded, "K={shards} threads={threads}");
            }
        }
    }

    #[test]
    fn build_sharded_on_empty_table() {
        let schema = Schema::new(vec![
            Attribute::new("NA", ["x", "y"]),
            Attribute::new("SA", ["a", "b"]),
        ]);
        let t = TableBuilder::new(schema).build();
        let spec = SaSpec::new(&t, 1);
        let g = PersonalGroups::build_sharded(&t, spec, 4, 2);
        assert!(g.is_empty());
        assert_eq!(g.total_rows(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one public attribute")]
    fn single_attribute_table_rejected() {
        let schema = Schema::new(vec![Attribute::new("SA", ["a", "b"])]);
        let t = TableBuilder::new(schema).build();
        SaSpec::new(&t, 0);
    }

    #[test]
    #[should_panic(expected = "at least 2 values")]
    fn unary_sa_domain_rejected() {
        let schema = Schema::new(vec![
            Attribute::new("NA", ["x", "y"]),
            Attribute::new("SA", ["only"]),
        ]);
        let t = TableBuilder::new(schema).build();
        SaSpec::new(&t, 1);
    }
}
