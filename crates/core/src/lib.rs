//! # rp-core
//!
//! Rust implementation of *Reconstruction Privacy: Enabling Statistical
//! Learning* (Ke Wang, Chao Han, Ada Wai-Chee Fu, Raymond Chi-Wing Wong,
//! Philip S. Yu — EDBT 2015): the `(λ, δ)`-reconstruction-privacy criterion
//! and the Sampling–Perturbing–Scaling (SPS) enforcement algorithm, together
//! with every piece the paper builds them from.
//!
//! ## Map from paper to modules
//!
//! | Paper | Module |
//! |---|---|
//! | Eq. 3: uniform perturbation matrix `P` and its inverse | [`matrix`] |
//! | §3.1: retain-with-probability-`p` perturbation of `SA` | [`perturb`] |
//! | Thm. 1 / Lemma 2: MLE reconstruction `F′` | [`mle`] (plus [`em`], an iterative-Bayes extension) |
//! | §3.2: personal vs aggregate groups | [`groups`] |
//! | Def. 3, Thm. 2, Cor. 3, Cor. 4, Eq. 10: the criterion and its test | [`privacy`] |
//! | §3.4 / Eq. 4: χ²-merging of public-attribute values | [`generalize`] |
//! | §5: the SPS algorithm (record- and histogram-level) | [`mod@sps`] |
//! | §6: count-query estimation `est = \|S*\|·F′` | [`estimate`] |
//! | ρ1-ρ2 / l-diversity / t-closeness side criteria | [`criteria`] |
//! | §5's rejected alternatives (reduce-p, suppression) | [`alternatives`] |
//! | §3.1's record-insertion story as a live publisher | [`incremental`] |
//! | Estimator variance / confidence intervals | [`variance`] |
//!
//! ## Quick example
//!
//! This crate is the *primitive layer*: free functions over tables,
//! groups and histograms. The ergonomic publish-once/answer-many surface
//! — `Publisher`, `Publication`, `QueryEngine` — lives in `rp-engine`,
//! which composes these primitives; start there (its crate docs carry the
//! full quickstart) unless you need a single stage in isolation:
//!
//! ```
//! use rand::SeedableRng;
//! use rp_core::groups::{PersonalGroups, SaSpec};
//! use rp_core::privacy::{check_groups, PrivacyParams};
//! use rp_core::sps::{sps, SpsConfig};
//! use rp_table::{Attribute, Schema, TableBuilder};
//!
//! // A toy table: Gender is public, Disease sensitive.
//! let schema = Schema::new(vec![
//!     Attribute::new("Gender", ["male", "female"]),
//!     Attribute::new("Disease", ["flu", "hiv", "none"]),
//! ]);
//! let mut builder = TableBuilder::new(schema);
//! for i in 0..5000u32 {
//!     let gender = if i % 2 == 0 { "male" } else { "female" };
//!     let disease = if i % 10 < 8 { "none" } else { "flu" };
//!     builder.push_values(&[gender, disease]).unwrap();
//! }
//! let table = builder.build();
//!
//! // One stage at a time: does plain uniform perturbation at p = 0.5
//! // satisfy (0.3, 0.3)-reconstruction privacy?
//! let spec = SaSpec::new(&table, 1);
//! let groups = PersonalGroups::build(&table, spec);
//! let params = PrivacyParams::new(0.3, 0.3);
//! let report = check_groups(&groups, 0.5, params);
//! assert!(!report.is_private(), "large groups violate");
//!
//! // Enforce it with SPS. (`rp_engine::Publisher` runs these three stages
//! // in one call and bundles the output into a `Publication`.)
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let output = sps(&mut rng, &table, &groups, SpsConfig { p: 0.5, params });
//! assert!(output.stats.groups_sampled > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alternatives;
pub mod audit;
pub mod criteria;
pub mod em;
pub mod estimate;
pub mod generalize;
pub mod groups;
pub mod incremental;
pub mod matrix;
pub mod mle;
pub mod perturb;
pub mod privacy;
pub mod sps;
pub mod variance;

pub use alternatives::{max_private_retention, suppress_and_perturb, SuppressionOutput};
pub use audit::{audit, PublicationAudit};
pub use estimate::{estimate_by_scan, GroupedView};
pub use generalize::{AttributeGeneralization, Generalization, MergeTest};
pub use groups::{PersonalGroup, PersonalGroups, SaSpec};
pub use incremental::{GroupStatus, IncrementalPublisher, LiveGroup};
pub use matrix::PerturbationMatrix;
pub use mle::{estimate_count, reconstruct_frequency, reconstruct_histogram};
pub use perturb::UniformPerturbation;
pub use privacy::{check_groups, group_is_private, max_group_size, PrivacyParams, ViolationReport};
pub use sps::{sps, sps_histograms, uniform_perturb, up_histograms, SpsConfig, SpsOutput};
pub use variance::{
    confidence_interval, reconstruction_se, reconstruction_variance, ConfidenceInterval,
};
