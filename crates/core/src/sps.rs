//! The Sampling–Perturbing–Scaling (SPS) algorithm of Section 5.
//!
//! For each personal group `g` whose size exceeds the threshold
//! `sg` of Equation 10, SPS
//!
//! 1. **Sampling** — draws a frequency-preserving sample `g1` of (expected)
//!    size `sg`: for each SA value, `⌊|g_sa|·τ⌋` records plus one more with
//!    probability `frac(|g_sa|·τ)`, where `τ = sg/|g|`;
//! 2. **Perturbing** — applies uniform perturbation to `g1`, yielding `g1*`;
//! 3. **Scaling** — duplicates every record of `g1*` `⌊τ′⌋` times plus one
//!    with probability `frac(τ′)`, `τ′ = |g|/|g1*|`, restoring the original
//!    group size in expectation without adding random trials.
//!
//! Groups already within the threshold are perturbed verbatim, so on data
//! that is small enough the algorithm degrades to plain uniform
//! perturbation (UP).
//!
//! Both a record-level executor (producing a publishable [`Table`]) and a
//! histogram-level executor (producing per-group perturbed SA histograms,
//! used by the Section-6 parameter sweeps) are provided; they are
//! distributionally identical.

use rand::Rng;
use rp_stats::sampling::stochastic_round;
use rp_table::{Table, TableBuilder};

use crate::groups::{PersonalGroups, SaSpec};
use crate::perturb::UniformPerturbation;
use crate::privacy::{max_group_size, PrivacyParams};

/// Configuration of one SPS run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpsConfig {
    /// Retention probability of the underlying uniform perturbation.
    pub p: f64,
    /// The `(λ, δ)` reconstruction-privacy requirement to enforce.
    pub params: PrivacyParams,
}

/// Counters describing what one SPS run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpsStats {
    /// Personal groups processed.
    pub groups: usize,
    /// Groups that exceeded `sg` and were sampled.
    pub groups_sampled: usize,
    /// Records in the input table.
    pub input_records: u64,
    /// Records drawn into samples (Σ |g1| over sampled groups).
    pub sampled_records: u64,
    /// Records in the output table.
    pub output_records: u64,
}

/// Output of the record-level SPS executor.
#[derive(Debug, Clone)]
pub struct SpsOutput {
    /// The published table `D*₂ = ⋃ g*₂`.
    pub table: Table,
    /// Run counters.
    pub stats: SpsStats,
}

/// Plain uniform perturbation (UP) of the whole table — the baseline the
/// paper compares SPS against. Equivalent to
/// [`UniformPerturbation::perturb_table`]; re-exported here so experiments
/// read symmetrically.
pub fn uniform_perturb<R: Rng + ?Sized>(
    rng: &mut R,
    table: &Table,
    spec: &SaSpec,
    p: f64,
) -> Table {
    UniformPerturbation::new(p, spec.m()).perturb_table(rng, table, spec.sa())
}

/// Record-level SPS: returns the published `D*₂` plus run statistics.
///
/// The input is consumed as [`PersonalGroups`] (the sort + scan
/// preprocessing of Section 5); `table` must be the table those groups were
/// built from.
///
/// # Panics
///
/// Panics if `groups` was not built from `table` (detected via row counts)
/// or on invalid `p`.
pub fn sps<R: Rng + ?Sized>(
    rng: &mut R,
    table: &Table,
    groups: &PersonalGroups,
    config: SpsConfig,
) -> SpsOutput {
    assert_eq!(
        groups.total_rows(),
        table.rows(),
        "groups were not built from this table"
    );
    let spec = groups.spec();
    let op = UniformPerturbation::new(config.p, spec.m());
    let mut builder = TableBuilder::with_capacity(table.schema().clone(), table.rows());
    let mut stats = SpsStats {
        groups: groups.len(),
        input_records: table.rows() as u64,
        ..SpsStats::default()
    };

    // Columnar emission: each group's output is one run — every NA column a
    // single constant fill from the group key, the SA column either a
    // precomputed perturbed slice (within-threshold path) or a handful of
    // per-value fills (scaled path). The RNG is drawn in exactly the row
    // order the row-at-a-time executor used, so publications for a given
    // seed are byte-identical to the seed implementation.
    let sa_attr = spec.sa();
    let sa_column = table.column(sa_attr).codes();
    // Scratch buffers reused across groups — the sampled path otherwise
    // allocates three short vectors per group.
    let mut sa_buffer: Vec<u32> = Vec::new();
    let mut sample_hist: Vec<u64> = Vec::new();
    let mut perturbed_hist: Vec<u64> = Vec::new();
    let mut cell_copies: Vec<u64> = Vec::new();
    let mut emit =
        |rows: usize, key: &[u32], sa_fill: &mut dyn FnMut(&mut rp_table::RunWriter<'_>)| {
            let mut run = builder.begin_run(rows);
            for (i, &attr) in spec.na().iter().enumerate() {
                run.fill(attr, key[i], rows)
                    .expect("group key codes are valid");
            }
            sa_fill(&mut run);
            run.finish()
                .expect("every column filled to the declared run length");
        };
    for group in groups.groups() {
        let size = group.len() as u64;
        let f_max = if group.is_empty() {
            0.0
        } else {
            group.max_frequency()
        };
        let sg = max_group_size(config.params, config.p, spec.m(), f_max);

        if size as f64 <= sg {
            // Within the threshold: perturb every record, no sampling. One
            // pass over the member rows draws the perturbed SA codes (same
            // RNG order as perturbing row by row), then the whole group is
            // emitted as per-column runs.
            sa_buffer.clear();
            sa_buffer.extend(
                group
                    .rows
                    .iter()
                    .map(|&r| op.perturb_code(rng, sa_column[r as usize])),
            );
            let sa_codes = &sa_buffer;
            emit(group.len(), &group.key, &mut |run| {
                run.copy_from_slice(sa_attr, sa_codes)
                    .expect("perturbed codes stay within the SA domain");
            });
            continue;
        }

        stats.groups_sampled += 1;
        let tau = sg / size as f64;
        // Sampling: per SA value, a frequency-preserving draw. Records
        // within one (group, SA value) cell are identical, so sampling
        // "any" ⌊c·τ⌋ records is just a count.
        sample_hist.clear();
        sample_hist.extend(
            group
                .sa_hist
                .iter()
                .map(|&c| stochastic_round(rng, c as f64 * tau).min(c)),
        );
        let mut g1_size: u64 = sample_hist.iter().sum();
        if g1_size == 0 {
            // Degenerate draw (tiny sg): keep one record of the most common
            // value so the group does not vanish from the publication.
            let argmax = group
                .sa_hist
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .expect("non-empty histogram");
            sample_hist[argmax] = 1;
            g1_size = 1;
        }
        stats.sampled_records += g1_size;
        // Perturbing the sample.
        op.perturb_histogram_into(rng, &sample_hist, &mut perturbed_hist);
        // Scaling back to the original size. All records of one
        // (group, SA value) cell share a single code template, so their
        // `⌊τ′⌋ + Bernoulli` copy counts are summed (same RNG draws as
        // duplicating row by row) and the group is emitted as one columnar
        // run: constant NA fills plus one SA fill per non-empty cell.
        let tau_prime = size as f64 / g1_size as f64;
        // Per-record `stochastic_round(tau_prime)` with the constant parts
        // hoisted: each record contributes ⌊τ′⌋ plus a Bernoulli(frac(τ′))
        // draw — drawn only when the fraction is non-zero, exactly like the
        // per-record call it replaces (identical RNG stream and totals).
        let tau_floor = tau_prime.floor() as u64;
        let tau_frac = tau_prime - tau_prime.floor();
        cell_copies.clear();
        for &count in &perturbed_hist {
            let extras: u64 = if tau_frac > 0.0 {
                (0..count)
                    .map(|_| u64::from(rng.gen::<f64>() < tau_frac))
                    .sum()
            } else {
                0
            };
            cell_copies.push(tau_floor * count + extras);
        }
        let total: u64 = cell_copies.iter().sum();
        emit(total as usize, &group.key, &mut |run| {
            for (sa_code, &copies) in cell_copies.iter().enumerate() {
                if copies > 0 {
                    run.fill(sa_attr, sa_code as u32, copies as usize)
                        .expect("SA codes index the SA domain");
                }
            }
        });
    }

    let table = builder.build();
    stats.output_records = table.rows() as u64;
    SpsOutput { table, stats }
}

/// Histogram-level SPS: per personal group, the perturbed-and-scaled SA
/// histogram of `g*₂` without materializing records. Returns one histogram
/// per group, aligned with `groups.groups()`.
///
/// Distributionally identical to [`sps`] followed by per-group histograms;
/// this is the fast path used by the Figure 3/5 sweeps (DESIGN.md
/// ablation #3).
pub fn sps_histograms<R: Rng + ?Sized>(
    rng: &mut R,
    groups: &PersonalGroups,
    config: SpsConfig,
) -> Vec<Vec<u64>> {
    let spec = groups.spec();
    let op = UniformPerturbation::new(config.p, spec.m());
    groups
        .groups()
        .iter()
        .map(|group| {
            let size = group.len() as u64;
            if size == 0 {
                return vec![0u64; spec.m()];
            }
            let f_max = group.max_frequency();
            let sg = max_group_size(config.params, config.p, spec.m(), f_max);
            if size as f64 <= sg {
                return op.perturb_histogram(rng, &group.sa_hist);
            }
            let tau = sg / size as f64;
            let mut sample_hist: Vec<u64> = group
                .sa_hist
                .iter()
                .map(|&c| stochastic_round(rng, c as f64 * tau).min(c))
                .collect();
            let mut g1_size: u64 = sample_hist.iter().sum();
            if g1_size == 0 {
                let argmax = group
                    .sa_hist
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .map(|(i, _)| i)
                    .expect("non-empty histogram");
                sample_hist[argmax] = 1;
                g1_size = 1;
            }
            let perturbed = op.perturb_histogram(rng, &sample_hist);
            let tau_prime = size as f64 / g1_size as f64;
            perturbed
                .iter()
                .map(|&c| {
                    // Each of the c records is duplicated ⌊τ′⌋ + Bernoulli
                    // times; the sum is c·⌊τ′⌋ + Binomial(c, frac).
                    let base = tau_prime.floor() as u64 * c;
                    let frac = tau_prime - tau_prime.floor();
                    base + rp_stats::sampling::sample_binomial(rng, c, frac)
                })
                .collect()
        })
        .collect()
}

/// Histogram-level UP: per personal group, the perturbed SA histogram under
/// plain uniform perturbation. The baseline counterpart of
/// [`sps_histograms`].
pub fn up_histograms<R: Rng + ?Sized>(
    rng: &mut R,
    groups: &PersonalGroups,
    p: f64,
) -> Vec<Vec<u64>> {
    let op = UniformPerturbation::new(p, groups.spec().m());
    groups
        .groups()
        .iter()
        .map(|g| op.perturb_histogram(rng, &g.sa_hist))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privacy::check_groups;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rp_table::{Attribute, Schema, TableBuilder};

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    /// One large violating group (a, f = 0.7) and one small private group.
    fn demo_table(big: usize, small: usize) -> Table {
        let schema = Schema::new(vec![
            Attribute::new("G", ["a", "b"]),
            Attribute::with_anonymous_domain("SA", 2),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..big {
            b.push_codes(&[0, u32::from(i % 10 >= 7)]).unwrap();
        }
        for i in 0..small {
            b.push_codes(&[1, (i % 2) as u32]).unwrap();
        }
        b.build()
    }

    fn config() -> SpsConfig {
        SpsConfig {
            p: 0.5,
            params: PrivacyParams::new(0.3, 0.3),
        }
    }

    #[test]
    fn output_size_tracks_input_in_expectation() {
        let t = demo_table(5000, 20);
        let spec = SaSpec::new(&t, 1);
        let groups = PersonalGroups::build(&t, spec);
        let mut rng = StdRng::seed_from_u64(21);
        let mut total = 0u64;
        let runs = 30;
        for _ in 0..runs {
            let out = sps(&mut rng, &t, &groups, config());
            total += out.stats.output_records;
            assert_eq!(out.stats.groups, 2);
            assert_eq!(out.stats.groups_sampled, 1, "only the big group samples");
        }
        let avg = total as f64 / runs as f64;
        assert_close(avg, 5020.0, 60.0);
    }

    #[test]
    fn sampled_group_uses_sg_records() {
        let t = demo_table(5000, 20);
        let spec = SaSpec::new(&t, 1);
        let groups = PersonalGroups::build(&t, spec.clone());
        let sg = max_group_size(config().params, 0.5, 2, 0.7);
        let mut rng = StdRng::seed_from_u64(22);
        let out = sps(&mut rng, &t, &groups, config());
        // Sample size ≈ sg (stochastic rounding of per-value targets).
        assert_close(out.stats.sampled_records as f64, sg, 3.0);
    }

    #[test]
    fn small_groups_pass_through_perturbed_only() {
        let t = demo_table(20, 20);
        let spec = SaSpec::new(&t, 1);
        let groups = PersonalGroups::build(&t, spec);
        let mut rng = StdRng::seed_from_u64(23);
        let out = sps(&mut rng, &t, &groups, config());
        assert_eq!(out.stats.groups_sampled, 0);
        assert_eq!(out.stats.output_records, 40, "no sampling ⇒ exact size");
    }

    #[test]
    fn output_satisfies_reconstruction_privacy_theorem_4() {
        // Theorem 4: every g*₂ must satisfy (λ, δ)-reconstruction privacy.
        // Privacy is determined by the number of *independent random
        // trials*, i.e. the sample size |g1| ≈ sg, regardless of the scaled
        // output size. We verify the enforced invariant: every sampled
        // group's trial count is within sg (+1 for stochastic rounding).
        let t = demo_table(5000, 20);
        let spec = SaSpec::new(&t, 1);
        let groups = PersonalGroups::build(&t, spec);
        let sg = max_group_size(config().params, 0.5, 2, 0.7);
        let mut rng = StdRng::seed_from_u64(24);
        for _ in 0..20 {
            let out = sps(&mut rng, &t, &groups, config());
            assert!(
                (out.stats.sampled_records as f64) <= sg + 2.0,
                "sample of {} exceeds sg = {sg}",
                out.stats.sampled_records
            );
        }
    }

    #[test]
    fn frequency_preserved_by_sampling_and_scaling() {
        // Theorem 5 (utility): E[F′ from D*₂] ≈ f. Check the SA histogram
        // of the sampled group's output keeps frequencies near the truth
        // after MLE reconstruction, averaged over runs.
        let t = demo_table(5000, 0);
        let spec = SaSpec::new(&t, 1);
        let groups = PersonalGroups::build(&t, spec);
        let mut rng = StdRng::seed_from_u64(25);
        let runs = 300;
        let mut mean_est = [0f64; 2];
        for _ in 0..runs {
            let hists = sps_histograms(&mut rng, &groups, config());
            let hist = &hists[0];
            let support: u64 = hist.iter().sum();
            if support == 0 {
                continue;
            }
            let est = crate::mle::reconstruct_histogram(hist, 0.5);
            for i in 0..2 {
                mean_est[i] += est[i] / runs as f64;
            }
        }
        assert_close(mean_est[0], 0.7, 0.03);
        assert_close(mean_est[1], 0.3, 0.03);
    }

    #[test]
    fn record_and_histogram_executors_agree_in_distribution() {
        let t = demo_table(3000, 50);
        let spec = SaSpec::new(&t, 1);
        let groups = PersonalGroups::build(&t, spec.clone());
        let runs = 200;
        let mut rec_mean = [0f64; 2];
        let mut his_mean = [0f64; 2];
        let mut rng = StdRng::seed_from_u64(26);
        for _ in 0..runs {
            let out = sps(&mut rng, &t, &groups, config());
            let h = out.table.histogram(1).unwrap();
            let hists = sps_histograms(&mut rng, &groups, config());
            let mut h2 = [0u64; 2];
            for hist in &hists {
                h2[0] += hist[0];
                h2[1] += hist[1];
            }
            for i in 0..2 {
                rec_mean[i] += h[i] as f64 / runs as f64;
                his_mean[i] += h2[i] as f64 / runs as f64;
            }
        }
        for i in 0..2 {
            let diff = (rec_mean[i] - his_mean[i]).abs();
            assert!(
                diff < 0.03 * rec_mean[i].max(1.0),
                "executors diverge on value {i}: {rec_mean:?} vs {his_mean:?}"
            );
        }
    }

    #[test]
    fn up_histograms_match_plain_perturbation_mean() {
        let t = demo_table(2000, 0);
        let spec = SaSpec::new(&t, 1);
        let groups = PersonalGroups::build(&t, spec);
        let mut rng = StdRng::seed_from_u64(27);
        let runs = 300;
        let mut mean = [0f64; 2];
        for _ in 0..runs {
            let h = &up_histograms(&mut rng, &groups, 0.5)[0];
            mean[0] += h[0] as f64 / runs as f64;
            mean[1] += h[1] as f64 / runs as f64;
        }
        // E[O*_0] = |S|(f·p + (1−p)/m) = 2000·(0.7·0.5 + 0.25) = 1200.
        assert_close(mean[0], 1200.0, 25.0);
        assert_close(mean[1], 800.0, 25.0);
    }

    #[test]
    fn up_violates_where_sps_enforces() {
        // The before/after picture of Section 6: UP leaves the large group
        // violating; SPS's sample is private by construction.
        let t = demo_table(5000, 20);
        let spec = SaSpec::new(&t, 1);
        let groups = PersonalGroups::build(&t, spec);
        let report = check_groups(&groups, 0.5, config().params);
        assert!(!report.is_private(), "UP design must violate here");
        let mut rng = StdRng::seed_from_u64(28);
        let out = sps(&mut rng, &t, &groups, config());
        // The *trial design* after SPS: sampled groups run sg trials.
        assert!(out.stats.groups_sampled >= 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let t = demo_table(1000, 10);
        let spec = SaSpec::new(&t, 1);
        let groups = PersonalGroups::build(&t, spec);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            sps(&mut rng, &t, &groups, config())
                .table
                .histogram(1)
                .unwrap()
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    #[should_panic(expected = "not built from this table")]
    fn mismatched_groups_panic() {
        let t1 = demo_table(100, 0);
        let t2 = demo_table(50, 0);
        let spec = SaSpec::new(&t1, 1);
        let groups = PersonalGroups::build(&t1, spec);
        let mut rng = StdRng::seed_from_u64(29);
        sps(&mut rng, &t2, &groups, config());
    }
}
