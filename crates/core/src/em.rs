//! Iterative Bayesian (EM) reconstruction of SA frequencies — an extension
//! beyond the paper's closed-form MLE.
//!
//! The paper reconstructs with the unconstrained MLE of Lemma 2, which can
//! produce negative frequencies on small supports. The classic alternative
//! (Agrawal–Aggarwal, PODS 2001) is the EM fixed-point
//!
//! ```text
//! θ_i ← θ_i · Σ_j  (O*_j / |S|) · P[j][i] / (Σ_k P[j][k] · θ_k)
//! ```
//!
//! which converges to the maximum-likelihood distribution *constrained to
//! the simplex*. It agrees with the closed form whenever the closed form is
//! already a probability vector, and projects gracefully when it is not.
//! DESIGN.md lists closed-form vs EM as ablation #2.

use crate::matrix::PerturbationMatrix;

/// Convergence control for [`em_reconstruct`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmOptions {
    /// Maximum number of EM sweeps.
    pub max_iterations: usize,
    /// Terminate once the L1 change between successive iterates drops below
    /// this threshold.
    pub tolerance: f64,
}

impl Default for EmOptions {
    fn default() -> Self {
        Self {
            max_iterations: 1000,
            tolerance: 1e-10,
        }
    }
}

/// Result of an EM reconstruction.
#[derive(Debug, Clone, PartialEq)]
pub struct EmReconstruction {
    /// The reconstructed frequency vector (a proper distribution).
    pub frequencies: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// Runs the EM fixed-point on an observed histogram.
///
/// # Panics
///
/// Panics if the histogram is empty or sums to zero, or on invalid `p`.
pub fn em_reconstruct(hist: &[u64], p: f64, options: EmOptions) -> EmReconstruction {
    let support: u64 = hist.iter().sum();
    assert!(support > 0, "cannot reconstruct from an empty record set");
    let m = hist.len();
    // Validate (p, m) through the matrix constructor; the update below
    // exploits the matrix structure instead of materializing it.
    let _ = PerturbationMatrix::new(p, m);
    let observed: Vec<f64> = hist.iter().map(|&o| o as f64 / support as f64).collect();

    // Uniform starting point: strictly interior, so no coordinate is stuck
    // at zero by the multiplicative update.
    let mut theta = vec![1.0 / m as f64; m];
    let mut iterations = 0;
    let mut converged = false;
    while iterations < options.max_iterations {
        iterations += 1;
        // Denominators: (P · θ)_j for every observed value j.
        // P·θ = p·θ + (1−p)/m · Σθ, exploiting the matrix structure.
        let theta_sum: f64 = theta.iter().sum();
        let base = (1.0 - p) / m as f64 * theta_sum;
        let denom: Vec<f64> = theta.iter().map(|&t| p * t + base).collect();
        // Multiplicative update.
        let mut next = vec![0.0; m];
        // Σ_j observed_j · P[j][i] / denom_j
        //   = observed_i · (p + (1−p)/m)/denom_i + Σ_{j≠i} observed_j · (1−p)/m / denom_j
        let uniform_term: f64 = observed
            .iter()
            .zip(&denom)
            .map(|(&o, &d)| if d > 0.0 { o / d } else { 0.0 })
            .sum::<f64>()
            * ((1.0 - p) / m as f64);
        for i in 0..m {
            let own = if denom[i] > 0.0 {
                observed[i] * p / denom[i]
            } else {
                0.0
            };
            next[i] = theta[i] * (own + uniform_term);
        }
        // Renormalize to guard against floating-point drift.
        let total: f64 = next.iter().sum();
        if total > 0.0 {
            for v in &mut next {
                *v /= total;
            }
        }
        let l1: f64 = next.iter().zip(&theta).map(|(a, b)| (a - b).abs()).sum();
        theta = next;
        if l1 < options.tolerance {
            converged = true;
            break;
        }
    }
    EmReconstruction {
        frequencies: theta,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mle::reconstruct_histogram;
    use crate::perturb::UniformPerturbation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn output_is_a_distribution() {
        let rec = em_reconstruct(&[5, 0, 95], 0.3, EmOptions::default());
        assert_close(rec.frequencies.iter().sum::<f64>(), 1.0, 1e-9);
        assert!(rec.frequencies.iter().all(|&f| (0.0..=1.0).contains(&f)));
        assert!(rec.converged);
    }

    #[test]
    fn agrees_with_closed_form_when_interior() {
        // A large, well-behaved histogram: the unconstrained MLE is interior
        // to the simplex, so EM must find the same point.
        let op = UniformPerturbation::new(0.5, 4);
        let hist = [4000u64, 3000, 2000, 1000];
        let mut rng = StdRng::seed_from_u64(9);
        let observed = op.perturb_histogram(&mut rng, &hist);
        let closed = reconstruct_histogram(&observed, 0.5);
        if closed.iter().all(|&f| f > 0.0) {
            let em = em_reconstruct(&observed, 0.5, EmOptions::default());
            for (a, b) in em.frequencies.iter().zip(closed.iter()) {
                assert_close(*a, *b, 1e-6);
            }
        } else {
            panic!("test setup expected an interior MLE");
        }
    }

    #[test]
    fn projects_negative_closed_form_onto_simplex() {
        // Observation below the noise floor: closed form goes negative,
        // EM stays non-negative.
        let hist = [0u64, 2, 98];
        let closed = reconstruct_histogram(&hist, 0.2);
        assert!(
            closed.iter().any(|&f| f < 0.0),
            "setup: closed form negative"
        );
        let em = em_reconstruct(&hist, 0.2, EmOptions::default());
        assert!(em.frequencies.iter().all(|&f| f >= 0.0));
        assert_close(em.frequencies.iter().sum::<f64>(), 1.0, 1e-9);
    }

    #[test]
    fn respects_iteration_cap() {
        let rec = em_reconstruct(
            &[1, 99],
            0.1,
            EmOptions {
                max_iterations: 3,
                tolerance: 0.0,
            },
        );
        assert_eq!(rec.iterations, 3);
        assert!(!rec.converged);
    }

    #[test]
    fn pure_data_reconstructs_itself_at_high_retention() {
        // With p close to 1 the observed distribution is nearly the truth.
        let rec = em_reconstruct(&[700, 200, 100], 0.99, EmOptions::default());
        assert_close(rec.frequencies[0], 0.7, 0.01);
        assert_close(rec.frequencies[1], 0.2, 0.01);
        assert_close(rec.frequencies[2], 0.1, 0.01);
    }

    #[test]
    #[should_panic(expected = "empty record set")]
    fn empty_histogram_panics() {
        em_reconstruct(&[0, 0], 0.5, EmOptions::default());
    }
}
