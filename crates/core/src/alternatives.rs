//! Alternative enforcement strategies the paper argues against —
//! implemented as comparison baselines.
//!
//! Section 5 motivates SPS by rejecting two simpler fixes for a violating
//! group (`|g| > sg`):
//!
//! * **Global retention reduction** — lower `p` until every group passes.
//!   "Reducing p has a global effect of making the perturbed data too
//!   noisy"; the experiments confirm it (Figure 3(a)).
//! * **Distribution distortion / suppression** — reducing the dominant
//!   frequency `f` distorts the data; the bluntest such instrument is
//!   suppressing violating groups outright.
//!
//! Both are provided here so the claim can be measured (the
//! `ablation_enforcement` bench and the `repro ablation` target).

use rand::Rng;

use crate::groups::PersonalGroups;
use crate::privacy::{check_groups, group_is_private, PrivacyParams};
use crate::sps::up_histograms;

/// The largest retention probability (within `tolerance`) at which *every*
/// personal group satisfies `(λ, δ)`-reconstruction privacy under plain
/// uniform perturbation, found by bisection over `p ∈ (lo, hi)`.
///
/// Returns `None` when even the noisiest considered setting (`p = lo`)
/// still violates — on large data this happens routinely, which is exactly
/// the paper's argument: the threshold `sg` shrinks as `1/(pf)²` but group
/// sizes do not change, so some tables cannot be fixed by noise alone.
///
/// # Panics
///
/// Panics unless `0 < lo < hi < 1` and `tolerance > 0`.
pub fn max_private_retention(
    groups: &PersonalGroups,
    params: PrivacyParams,
    lo: f64,
    hi: f64,
    tolerance: f64,
) -> Option<f64> {
    assert!(0.0 < lo && lo < hi && hi < 1.0, "need 0 < lo < hi < 1");
    assert!(tolerance > 0.0, "tolerance must be positive");
    let private_at = |p: f64| check_groups(groups, p, params).is_private();
    if !private_at(lo) {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    if private_at(hi) {
        return Some(hi);
    }
    while hi - lo > tolerance {
        let mid = 0.5 * (lo + hi);
        if private_at(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Outcome of the suppression baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct SuppressionOutput {
    /// Per-group perturbed SA histograms; suppressed groups are all-zero.
    pub histograms: Vec<Vec<u64>>,
    /// Indices of the suppressed (violating) groups.
    pub suppressed: Vec<usize>,
    /// Records dropped by suppression.
    pub suppressed_records: u64,
}

/// Suppression baseline: perturb compliant groups with plain UP and drop
/// violating groups entirely. Trivially satisfies the criterion (a
/// suppressed group admits no reconstruction at all) at the cost of
/// erasing whole subpopulations — the distortion the paper's
/// frequency-preserving sampling avoids.
pub fn suppress_and_perturb<R: Rng + ?Sized>(
    rng: &mut R,
    groups: &PersonalGroups,
    p: f64,
    params: PrivacyParams,
) -> SuppressionOutput {
    let m = groups.spec().m();
    let mut histograms = up_histograms(rng, groups, p);
    let mut suppressed = Vec::new();
    let mut suppressed_records = 0u64;
    for (i, g) in groups.groups().iter().enumerate() {
        let f = if g.is_empty() { 0.0 } else { g.max_frequency() };
        if !group_is_private(params, p, m, f, g.len() as u64) {
            histograms[i] = vec![0; m];
            suppressed.push(i);
            suppressed_records += g.len() as u64;
        }
    }
    SuppressionOutput {
        histograms,
        suppressed,
        suppressed_records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::SaSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rp_table::{Attribute, Schema, Table, TableBuilder};

    /// One large skewed group and one small balanced group.
    fn demo_table(big: usize, small: usize) -> Table {
        let schema = Schema::new(vec![
            Attribute::new("G", ["a", "b"]),
            Attribute::with_anonymous_domain("SA", 2),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..big {
            b.push_codes(&[0, u32::from(i % 10 >= 7)]).unwrap();
        }
        for i in 0..small {
            b.push_codes(&[1, (i % 2) as u32]).unwrap();
        }
        b.build()
    }

    fn groups_of(t: &Table) -> PersonalGroups {
        PersonalGroups::build(t, SaSpec::new(t, 1))
    }

    #[test]
    fn bisection_finds_the_privacy_boundary() {
        let t = demo_table(300, 20);
        let groups = groups_of(&t);
        let params = PrivacyParams::new(0.3, 0.3);
        let p = max_private_retention(&groups, params, 0.01, 0.99, 1e-4)
            .expect("a small enough p exists for 300 records");
        // Just below the boundary: private; just above: not.
        assert!(check_groups(&groups, p, params).is_private());
        assert!(!check_groups(&groups, (p + 0.02).min(0.989), params).is_private());
    }

    #[test]
    fn unfixable_table_returns_none() {
        // sg at f = 0.7 stays bounded as p → 0 (sg → −2·(1/m)·lnδ/(λpf)²
        // grows actually)... use a pathological case instead: delta close
        // to 1 shrinks sg toward zero for every p.
        let t = demo_table(5000, 0);
        let groups = groups_of(&t);
        let params = PrivacyParams::new(0.5, 0.999);
        assert_eq!(
            max_private_retention(&groups, params, 0.01, 0.99, 1e-3),
            None
        );
    }

    #[test]
    fn already_private_table_keeps_high_p() {
        let t = demo_table(20, 10);
        let groups = groups_of(&t);
        let params = PrivacyParams::new(0.3, 0.3);
        let p = max_private_retention(&groups, params, 0.01, 0.95, 1e-4).unwrap();
        assert!((p - 0.95).abs() < 1e-9, "hi end is private, got {p}");
    }

    #[test]
    fn suppression_zeroes_violating_groups_only() {
        let t = demo_table(5000, 20);
        let groups = groups_of(&t);
        let params = PrivacyParams::new(0.3, 0.3);
        let mut rng = StdRng::seed_from_u64(1);
        let out = suppress_and_perturb(&mut rng, &groups, 0.5, params);
        assert_eq!(out.suppressed, vec![0], "only the 5000-record group");
        assert_eq!(out.suppressed_records, 5000);
        assert!(out.histograms[0].iter().all(|&c| c == 0));
        assert_eq!(out.histograms[1].iter().sum::<u64>(), 20);
    }

    #[test]
    fn suppression_on_private_table_is_plain_up() {
        let t = demo_table(30, 30);
        let groups = groups_of(&t);
        let params = PrivacyParams::new(0.3, 0.3);
        let mut rng = StdRng::seed_from_u64(2);
        let out = suppress_and_perturb(&mut rng, &groups, 0.5, params);
        assert!(out.suppressed.is_empty());
        assert_eq!(out.suppressed_records, 0);
        let total: u64 = out.histograms.iter().flatten().sum();
        assert_eq!(total, 60);
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi < 1")]
    fn bad_bisection_range_rejected() {
        let t = demo_table(10, 10);
        let groups = groups_of(&t);
        max_private_retention(&groups, PrivacyParams::new(0.3, 0.3), 0.5, 0.2, 1e-3);
    }
}
