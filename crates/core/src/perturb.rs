//! The uniform perturbation operator (Section 3.1): retain each record's SA
//! value with probability `p`, otherwise replace it with a uniform draw from
//! the SA domain.
//!
//! Two equivalent implementations are provided:
//!
//! * **record-level** — flips a biased coin per record, producing a real
//!   perturbed table `D*` (what a publisher would actually release);
//! * **histogram-level** — draws the perturbed SA *histogram* of a record
//!   set directly via binomial/multinomial sampling. Distributionally
//!   identical for any consumer that only looks at counts, and orders of
//!   magnitude faster for the large parameter sweeps of Section 6
//!   (ablation #3 in DESIGN.md).

use rand::Rng;
use rp_stats::sampling::sample_binomial;
use rp_table::{AttrId, Column, Table};

use crate::matrix::PerturbationMatrix;

/// The uniform perturbation operator for one sensitive attribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformPerturbation {
    matrix: PerturbationMatrix,
}

impl UniformPerturbation {
    /// Creates the operator with retention probability `p` over an SA domain
    /// of size `m`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1` and `m >= 2` (see
    /// [`PerturbationMatrix::new`]).
    pub fn new(p: f64, m: usize) -> Self {
        Self {
            matrix: PerturbationMatrix::new(p, m),
        }
    }

    /// The transition matrix `P`.
    pub fn matrix(&self) -> &PerturbationMatrix {
        &self.matrix
    }

    /// Retention probability `p`.
    pub fn retention(&self) -> f64 {
        self.matrix.retention()
    }

    /// SA domain size `m`.
    pub fn domain_size(&self) -> usize {
        self.matrix.domain_size()
    }

    /// Perturbs a single SA code: keep with probability `p`, otherwise
    /// replace with a uniform draw over the whole domain (the original value
    /// included, matching Equation 3's `p + (1−p)/m` diagonal).
    #[inline]
    pub fn perturb_code<R: Rng + ?Sized>(&self, rng: &mut R, code: u32) -> u32 {
        debug_assert!((code as usize) < self.domain_size());
        if rng.gen::<f64>() < self.retention() {
            code
        } else {
            rng.gen_range(0..self.domain_size() as u32)
        }
    }

    /// Record-level perturbation of a whole SA column.
    pub fn perturb_column<R: Rng + ?Sized>(&self, rng: &mut R, column: &Column) -> Column {
        Column::from_codes(
            column
                .codes()
                .iter()
                .map(|&c| self.perturb_code(rng, c))
                .collect(),
        )
    }

    /// Record-level perturbation of a table's SA attribute, producing the
    /// published `D*`. Public attributes are left untouched.
    ///
    /// # Panics
    ///
    /// Panics if the attribute's domain size differs from the operator's `m`.
    pub fn perturb_table<R: Rng + ?Sized>(&self, rng: &mut R, table: &Table, sa: AttrId) -> Table {
        assert_eq!(
            table.schema().attribute(sa).domain_size(),
            self.domain_size(),
            "operator domain size does not match the SA attribute"
        );
        let perturbed = self.perturb_column(rng, table.column(sa));
        table
            .with_column_replaced(sa, perturbed)
            .expect("perturbed codes stay within the SA domain")
    }

    /// Histogram-level perturbation: given the SA histogram of a record set,
    /// draws the histogram the record-level operator would have produced.
    ///
    /// For each value `i` with count `c_i`, `Binomial(c_i, p)` records
    /// retain `i` and the rest scatter uniformly (multinomial) over all `m`
    /// values.
    ///
    /// # Panics
    ///
    /// Panics if `hist.len() != m`.
    pub fn perturb_histogram<R: Rng + ?Sized>(&self, rng: &mut R, hist: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        self.perturb_histogram_into(rng, hist, &mut out);
        out
    }

    /// As [`UniformPerturbation::perturb_histogram`], writing the perturbed
    /// histogram into `out` (cleared and refilled) so per-group callers on
    /// the hot SPS path can reuse one buffer instead of allocating per
    /// group. Identical RNG draws and results.
    ///
    /// # Panics
    ///
    /// Panics if `hist.len() != m`.
    pub fn perturb_histogram_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        hist: &[u64],
        out: &mut Vec<u64>,
    ) {
        let m = self.domain_size();
        assert_eq!(hist.len(), m, "histogram must have length m");
        out.clear();
        out.resize(m, 0);
        let mut scattered_total = 0u64;
        for (i, &c) in hist.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let retained = sample_binomial(rng, c, self.retention());
            out[i] += retained;
            scattered_total += c - retained;
        }
        if scattered_total > 0 {
            // Uniform multinomial scatter, mirroring `sample_multinomial`
            // with `vec![1.0 / m; m]` arithmetic step for step (identical
            // conditional-binomial sequence, hence an identical RNG stream)
            // but without materializing the probability and count vectors.
            let p = 1.0 / m as f64;
            let mut remaining_n = scattered_total;
            let mut remaining_p = 1.0;
            for (i, o) in out.iter_mut().enumerate() {
                if i + 1 == m {
                    *o += remaining_n;
                    break;
                }
                if remaining_n == 0 || remaining_p <= 0.0 {
                    continue;
                }
                let cond = (p / remaining_p).clamp(0.0, 1.0);
                let c = sample_binomial(rng, remaining_n, cond);
                *o += c;
                remaining_n -= c;
                remaining_p -= p;
            }
        }
    }

    /// Expected observed frequency of a value with true frequency `f`
    /// (Equation 1 / Lemma 2(i), in fractions): `f·p + (1−p)/m`.
    pub fn expected_observed_frequency(&self, f: f64) -> f64 {
        f * self.retention() + (1.0 - self.retention()) / self.domain_size() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rp_table::{Attribute, Schema, TableBuilder};

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    fn sa_table(counts: &[u64]) -> Table {
        let m = counts.len();
        let schema = Schema::new(vec![
            Attribute::new("NA", ["only"]),
            Attribute::with_anonymous_domain("SA", m),
        ]);
        let mut b = TableBuilder::new(schema);
        for (code, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                b.push_codes(&[0, code as u32]).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn perturb_table_keeps_public_attributes() {
        let t = sa_table(&[50, 30, 20]);
        let op = UniformPerturbation::new(0.5, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let perturbed = op.perturb_table(&mut rng, &t, 1);
        assert_eq!(perturbed.rows(), t.rows());
        assert_eq!(
            perturbed.histogram(0).unwrap(),
            t.histogram(0).unwrap(),
            "NA column untouched"
        );
    }

    #[test]
    fn retained_fraction_matches_p() {
        let t = sa_table(&[10_000, 0]);
        let op = UniformPerturbation::new(0.7, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let perturbed = op.perturb_table(&mut rng, &t, 1);
        // Expected observed frequency of value 0: 0.7 + 0.3/2 = 0.85.
        let observed = perturbed.histogram(1).unwrap()[0] as f64 / 10_000.0;
        assert_close(observed, 0.85, 0.02);
    }

    #[test]
    fn record_and_histogram_levels_agree_in_distribution() {
        // Compare mean histograms of both implementations over many runs.
        let hist = [400u64, 300, 200, 100];
        let op = UniformPerturbation::new(0.3, 4);
        let t = sa_table(&hist);
        let runs = 300;
        let mut rec_mean = [0f64; 4];
        let mut his_mean = [0f64; 4];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..runs {
            let p1 = op.perturb_table(&mut rng, &t, 1).histogram(1).unwrap();
            let p2 = op.perturb_histogram(&mut rng, &hist);
            for i in 0..4 {
                rec_mean[i] += p1[i] as f64 / runs as f64;
                his_mean[i] += p2[i] as f64 / runs as f64;
            }
        }
        for i in 0..4 {
            let expected = 0.3 * hist[i] as f64 + 0.7 * 1000.0 / 4.0;
            assert_close(rec_mean[i], expected, 12.0);
            assert_close(his_mean[i], expected, 12.0);
        }
    }

    #[test]
    fn histogram_perturbation_preserves_total() {
        let op = UniformPerturbation::new(0.5, 5);
        let mut rng = StdRng::seed_from_u64(4);
        for hist in [
            vec![10u64, 0, 5, 3, 2],
            vec![0, 0, 0, 0, 0],
            vec![1000, 1, 1, 1, 1],
        ] {
            let total: u64 = hist.iter().sum();
            let out = op.perturb_histogram(&mut rng, &hist);
            assert_eq!(out.iter().sum::<u64>(), total);
        }
    }

    #[test]
    fn expected_observed_frequency_matches_lemma_2() {
        let op = UniformPerturbation::new(0.2, 10);
        assert_close(op.expected_observed_frequency(1.0), 0.28, 1e-12);
        assert_close(op.expected_observed_frequency(0.0), 0.08, 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let t = sa_table(&[100, 100]);
        let op = UniformPerturbation::new(0.5, 2);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            op.perturb_table(&mut rng, &t, 1).histogram(1).unwrap()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    #[should_panic(expected = "does not match the SA attribute")]
    fn mismatched_domain_size_panics() {
        let t = sa_table(&[10, 10, 10]);
        let op = UniformPerturbation::new(0.5, 2);
        let mut rng = StdRng::seed_from_u64(6);
        op.perturb_table(&mut rng, &t, 1);
    }

    /// The inlined uniform scatter of `perturb_histogram_into` must stay in
    /// RNG lockstep with `rp_stats::sampling::sample_multinomial` over a
    /// uniform probability vector — the byte-identical-publication contract
    /// rests on the two implementations drawing and landing identically.
    /// This pins that equivalence draw for draw.
    #[test]
    fn scatter_stays_in_lockstep_with_sample_multinomial() {
        use rp_stats::sampling::sample_multinomial;
        for (seed, m, hist) in [
            (7u64, 2usize, vec![120u64, 40]),
            (8, 5, vec![0, 13, 200, 1, 77]),
            (9, 3, vec![1000, 0, 500]),
            (10, 4, vec![3, 3, 3, 3]),
        ] {
            for p in [0.2, 0.5, 0.8] {
                let op = UniformPerturbation::new(p, m);
                // Reference: the pre-inline implementation — binomial
                // retentions, then sample_multinomial over vec![1/m; m].
                let mut rng = StdRng::seed_from_u64(seed);
                let mut reference = vec![0u64; m];
                let mut scattered = 0u64;
                for (i, &c) in hist.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    let retained = rp_stats::sampling::sample_binomial(&mut rng, c, p);
                    reference[i] += retained;
                    scattered += c - retained;
                }
                if scattered > 0 {
                    let uniform = vec![1.0 / m as f64; m];
                    for (o, extra) in reference
                        .iter_mut()
                        .zip(sample_multinomial(&mut rng, scattered, &uniform))
                    {
                        *o += extra;
                    }
                }
                let trailing_ref: u64 = rng.gen();
                // The inlined path from the same seed.
                let mut rng = StdRng::seed_from_u64(seed);
                let inlined = op.perturb_histogram(&mut rng, &hist);
                let trailing: u64 = rng.gen();
                assert_eq!(inlined, reference, "outputs diverged (p={p})");
                assert_eq!(trailing, trailing_ref, "RNG stream diverged (p={p})");
            }
        }
    }
}
