//! Sampling variance and confidence intervals for the MLE reconstruction —
//! the analyst-facing companion of Lemma 2.
//!
//! The observed count `O*` is a sum of independent Poisson trials: records
//! carrying the value succeed with probability `p + (1−p)/m`, the rest
//! with `(1−p)/m`. Its variance is therefore exact and closed-form, and
//! `F′ = (O*/|S| − (1−p)/m)/p` inherits it scaled by `1/(|S|·p)²`:
//!
//! ```text
//! Var[F′] = [ f·q1·(1−q1) + (1−f)·q0·(1−q0) ] / (|S|·p²)
//!   with q1 = p + (1−p)/m,  q0 = (1−p)/m
//! ```
//!
//! This quantifies the law-of-large-numbers gap the paper exploits: the
//! standard error of an aggregate reconstruction over `|S|` records decays
//! as `1/√|S|`, while a personal group sampled down to `sg` records stays
//! noisy.

use rp_stats::special::std_normal_cdf;

/// Exact variance of the unbiased estimator `F′` for a value with true
/// frequency `f` in a record set of `support` perturbed records.
///
/// # Panics
///
/// Panics on `support == 0`, `f` outside `[0, 1]`, or invalid `(p, m)`.
pub fn reconstruction_variance(f: f64, support: u64, p: f64, m: usize) -> f64 {
    assert!(support > 0, "variance undefined on an empty record set");
    assert!(
        (0.0..=1.0).contains(&f),
        "frequency must lie in [0, 1], got {f}"
    );
    assert!(p > 0.0 && p < 1.0, "retention must lie in (0, 1), got {p}");
    assert!(m >= 2, "domain size must be at least 2, got {m}");
    let q0 = (1.0 - p) / m as f64;
    let q1 = p + q0;
    let var_o = support as f64 * (f * q1 * (1.0 - q1) + (1.0 - f) * q0 * (1.0 - q0));
    var_o / (support as f64 * p).powi(2)
}

/// Standard error of `F′` (square root of [`reconstruction_variance`]).
pub fn reconstruction_se(f: f64, support: u64, p: f64, m: usize) -> f64 {
    reconstruction_variance(f, support, p, m).sqrt()
}

/// A symmetric normal-approximation confidence interval for a
/// reconstructed frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// The point estimate `F′`.
    pub estimate: f64,
    /// Interval lower bound (not clamped; may be negative like `F′`).
    pub lo: f64,
    /// Interval upper bound.
    pub hi: f64,
    /// The confidence level the interval was built for.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Interval half-width.
    pub fn half_width(&self) -> f64 {
        0.5 * (self.hi - self.lo)
    }

    /// Whether the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        (self.lo..=self.hi).contains(&value)
    }
}

/// Builds the normal-approximation CI around an estimate `f_hat`
/// reconstructed from `support` records. Uses `f_hat` clamped to `[0, 1]`
/// as the plug-in frequency for the variance.
///
/// # Panics
///
/// Panics on invalid `(support, p, m)` or `level` outside `(0, 1)`.
pub fn confidence_interval(
    f_hat: f64,
    support: u64,
    p: f64,
    m: usize,
    level: f64,
) -> ConfidenceInterval {
    assert!(
        level > 0.0 && level < 1.0,
        "level must lie in (0, 1), got {level}"
    );
    let se = reconstruction_se(f_hat.clamp(0.0, 1.0), support, p, m);
    let z = normal_quantile(0.5 + level / 2.0);
    ConfidenceInterval {
        estimate: f_hat,
        lo: f_hat - z * se,
        hi: f_hat + z * se,
        level,
    }
}

/// Standard-normal quantile by bisection on the CDF (the CDF is built on
/// the crate's erfc; a handful of iterations suffice for the 1e-9
/// tolerance needed here).
fn normal_quantile(prob: f64) -> f64 {
    assert!(prob > 0.0 && prob < 1.0, "probability must lie in (0, 1)");
    let (mut lo, mut hi) = (-10.0_f64, 10.0_f64);
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if std_normal_cdf(mid) < prob {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mle::reconstruct_histogram;
    use crate::perturb::UniformPerturbation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn variance_matches_monte_carlo() {
        let (p, m) = (0.3, 5);
        let op = UniformPerturbation::new(p, m);
        let hist = [600u64, 150, 0, 200, 50];
        let support: u64 = hist.iter().sum();
        let f = 0.6;
        let mut rng = StdRng::seed_from_u64(5);
        let runs = 30_000;
        let mut stats = rp_stats::OnlineStats::new();
        for _ in 0..runs {
            let observed = op.perturb_histogram(&mut rng, &hist);
            stats.push(reconstruct_histogram(&observed, p)[0]);
        }
        let predicted = reconstruction_variance(f, support, p, m);
        assert_close(
            stats.sample_variance().unwrap(),
            predicted,
            0.05 * predicted,
        );
    }

    #[test]
    fn variance_decays_as_one_over_support() {
        let v1 = reconstruction_variance(0.4, 100, 0.5, 10);
        let v2 = reconstruction_variance(0.4, 10_000, 0.5, 10);
        assert_close(v1 / v2, 100.0, 1e-6);
    }

    #[test]
    fn variance_grows_as_retention_falls() {
        assert!(
            reconstruction_variance(0.4, 1000, 0.1, 10)
                > reconstruction_variance(0.4, 1000, 0.9, 10)
        );
    }

    #[test]
    fn normal_quantile_known_values() {
        assert_close(normal_quantile(0.975), 1.959_964, 1e-4);
        assert_close(normal_quantile(0.5), 0.0, 1e-6);
        assert_close(normal_quantile(0.841_344_7), 1.0, 1e-4);
    }

    #[test]
    fn interval_covers_truth_at_nominal_rate() {
        let (p, m) = (0.4, 4);
        let op = UniformPerturbation::new(p, m);
        let hist = [500u64, 300, 150, 50];
        let support: u64 = hist.iter().sum();
        let f_true = 0.5;
        let mut rng = StdRng::seed_from_u64(6);
        let runs = 4_000;
        let mut covered = 0;
        for _ in 0..runs {
            let observed = op.perturb_histogram(&mut rng, &hist);
            let f_hat = reconstruct_histogram(&observed, p)[0];
            if confidence_interval(f_hat, support, p, m, 0.95).contains(f_true) {
                covered += 1;
            }
        }
        let coverage = covered as f64 / runs as f64;
        assert_close(coverage, 0.95, 0.02);
    }

    #[test]
    fn interval_geometry() {
        let ci = confidence_interval(0.3, 1000, 0.5, 10, 0.9);
        assert!(ci.lo < ci.estimate && ci.estimate < ci.hi);
        assert_close(ci.estimate - ci.lo, ci.hi - ci.estimate, 1e-12);
        assert!(ci.contains(0.3));
        assert!(!ci.contains(1.0));
        assert_close(ci.half_width(), (ci.hi - ci.lo) / 2.0, 1e-12);
    }

    #[test]
    fn personal_vs_aggregate_se_gap() {
        // The quantitative heart of the paper: the same frequency is far
        // better estimated from a big aggregate than from an sg-sized
        // personal sample.
        let personal = reconstruction_se(0.7, 131, 0.5, 2); // sg-ish
        let aggregate = reconstruction_se(0.7, 45_222, 0.5, 2);
        assert!(personal > 10.0 * aggregate);
    }

    #[test]
    #[should_panic(expected = "level must lie in (0, 1)")]
    fn bad_level_rejected() {
        confidence_interval(0.5, 100, 0.5, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty record set")]
    fn zero_support_rejected() {
        reconstruction_variance(0.5, 0, 0.5, 2);
    }
}
