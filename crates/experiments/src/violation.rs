//! Figures 2 and 4: violation of reconstruction privacy by plain uniform
//! perturbation, measured as `vg` (fraction of violating personal groups)
//! and `vr` (fraction of records in violating groups), swept over
//! p, λ, δ and — for CENSUS — the data size `|D|`.

use crate::config::{defaults, PreparedDataset};
use rp_core::privacy::{check_groups, PrivacyParams};

/// Which parameter a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepAxis {
    /// Vary the retention probability p.
    P,
    /// Vary λ.
    Lambda,
    /// Vary δ.
    Delta,
}

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViolationPoint {
    /// The swept parameter's value.
    pub value: f64,
    /// Fraction of violating groups.
    pub vg: f64,
    /// Fraction of records in violating groups.
    pub vr: f64,
}

/// One violation sweep (a sub-figure of Figures 2/4).
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationSweep {
    /// Data set name.
    pub dataset: String,
    /// The swept axis.
    pub axis: SweepAxis,
    /// The sweep points.
    pub points: Vec<ViolationPoint>,
}

/// Runs one sweep against a prepared data set, holding the other
/// parameters at the paper's defaults.
pub fn sweep(dataset: &PreparedDataset, axis: SweepAxis, values: &[f64]) -> ViolationSweep {
    let points = values
        .iter()
        .map(|&value| {
            let (p, lambda, delta) = match axis {
                SweepAxis::P => (value, defaults::LAMBDA, defaults::DELTA),
                SweepAxis::Lambda => (defaults::P, value, defaults::DELTA),
                SweepAxis::Delta => (defaults::P, defaults::LAMBDA, value),
            };
            let report = check_groups(&dataset.groups, p, PrivacyParams::new(lambda, delta));
            ViolationPoint {
                value,
                vg: report.vg(),
                vr: report.vr(),
            }
        })
        .collect();
    ViolationSweep {
        dataset: dataset.name.clone(),
        axis,
        points,
    }
}

/// Runs the paper's three sweeps (vs p, vs λ, vs δ) for one data set —
/// Figure 2 when the data set is ADULT, the first three panels of Figure 4
/// when it is CENSUS.
pub fn run_all(dataset: &PreparedDataset) -> Vec<ViolationSweep> {
    vec![
        sweep(dataset, SweepAxis::P, &defaults::P_SWEEP),
        sweep(dataset, SweepAxis::Lambda, &defaults::LAMBDA_SWEEP),
        sweep(dataset, SweepAxis::Delta, &defaults::DELTA_SWEEP),
    ]
}

/// The `|D|` panel of Figure 4: violation at defaults across CENSUS sizes.
pub fn census_size_sweep(sizes: &[usize]) -> ViolationSweep {
    let params = PrivacyParams::new(defaults::LAMBDA, defaults::DELTA);
    let points = sizes
        .iter()
        .map(|&rows| {
            let dataset = PreparedDataset::census(rows);
            let report = check_groups(&dataset.groups, defaults::P, params);
            ViolationPoint {
                value: rows as f64,
                vg: report.vg(),
                vr: report.vr(),
            }
        })
        .collect();
    ViolationSweep {
        dataset: "CENSUS".to_string(),
        axis: SweepAxis::P, // size axis; label handled by the renderer
        points,
    }
}

/// Renders a sweep with a custom axis label.
pub fn render(sweep: &ViolationSweep, axis_label: &str) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: violation rate vs {axis_label} (defaults p={}, lambda={}, delta={})",
        sweep.dataset,
        defaults::P,
        defaults::LAMBDA,
        defaults::DELTA
    );
    let _ = writeln!(out, "{:<12}{:<10}{:<10}", axis_label, "vg", "vr");
    for pt in &sweep.points {
        let _ = writeln!(out, "{:<12}{:<10.4}{:<10.4}", pt.value, pt.vg, pt.vr);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adult_defaults_show_widespread_violation() {
        // The paper: at defaults, ~85% of ADULT groups violate, covering
        // >99% of records. Our small synthetic sample keeps the same
        // character — violations dominated by record coverage — at a
        // slightly lower level (the 20k-row sample has proportionally more
        // small groups than the real 45k-row ADULT).
        let d = PreparedDataset::adult_small(20_000);
        let s = sweep(&d, SweepAxis::P, &[defaults::P]);
        let pt = s.points[0];
        assert!(pt.vg > 0.3, "vg = {}", pt.vg);
        assert!(pt.vr > 0.8, "vr = {}", pt.vr);
        assert!(pt.vr >= pt.vg, "large groups violate first");
    }

    #[test]
    fn violation_monotone_in_lambda_and_delta() {
        // Larger λ or δ demand *more* reconstruction inaccuracy, shrinking
        // sg = −2c·ln δ/(λpf)², so violations cannot shrink.
        let d = PreparedDataset::adult_small(20_000);
        for axis in [SweepAxis::Lambda, SweepAxis::Delta] {
            let s = sweep(&d, axis, &defaults::LAMBDA_SWEEP);
            for w in s.points.windows(2) {
                assert!(
                    w[1].vg >= w[0].vg - 1e-12,
                    "vg must not decrease along {axis:?}: {w:?}"
                );
            }
        }
    }

    #[test]
    fn violation_grows_with_p() {
        // More retention ⇒ more accurate personal reconstruction ⇒ smaller
        // sg ⇒ more violations.
        let d = PreparedDataset::adult_small(20_000);
        let s = sweep(&d, SweepAxis::P, &defaults::P_SWEEP);
        assert!(
            s.points.last().unwrap().vg >= s.points.first().unwrap().vg,
            "{:?}",
            s.points
        );
    }

    #[test]
    fn run_all_produces_three_sweeps() {
        let d = PreparedDataset::adult_small(10_000);
        let sweeps = run_all(&d);
        assert_eq!(sweeps.len(), 3);
        assert_eq!(sweeps[0].points.len(), 5);
    }

    #[test]
    fn render_includes_every_point() {
        let d = PreparedDataset::adult_small(10_000);
        let s = sweep(&d, SweepAxis::P, &[0.1, 0.9]);
        let text = render(&s, "p");
        assert!(text.contains("0.1") && text.contains("0.9"));
    }
}
