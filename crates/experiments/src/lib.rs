//! # rp-experiments
//!
//! The reproduction harness of the reconstruction-privacy workspace: one
//! runner per table/figure of the paper's evaluation (Section 6 plus the
//! analytical Tables 1/2 and Figure 1), shared between the `repro` binary
//! and the Criterion benches.
//!
//! | Paper artifact | Module | `repro` subcommand |
//! |---|---|---|
//! | Table 1 (DP disclosure on ADULT) | [`table1`] | `repro table1` |
//! | Table 2 (`2(b/x)²` grid) | [`table2`] | `repro table2` |
//! | Tables 4/5 (NA aggregation impact) | [`tables45`] | `repro table4`, `repro table5` |
//! | Figure 1 (`sg` vs `f`) | [`figure1`] | `repro figure1` |
//! | Figures 2/4 (violation rates) | [`violation`] | `repro figure2`, `repro figure4` |
//! | Figures 3/5 (relative query error) | [`error`] | `repro figure3`, `repro figure5` |
//! | Extension: enforcement-strategy comparison | [`ablation`] | `repro ablation` |
//! | Extension: classifier accuracy from publications | [`learning`] | `repro learning` |
//! | Extension: SPS vs binomial-DP utility | [`bakeoff`] | `rpctl bakeoff` |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod bakeoff;
pub mod config;
pub mod error;
pub mod figure1;
pub mod learning;
pub mod table1;
pub mod table2;
pub mod tables45;
pub mod violation;

pub use config::{defaults, PreparedDataset};
