//! Table 2: the disclosure-indicator grid `2(b/x)²`.
//!
//! Pure closed form (Corollary 2): rows are Laplace scales `b` (with the
//! corresponding ε at Δ = 2), columns are true answers `x`. Boldface in the
//! paper marks cells where the indicator is small enough for `Y/X` to track
//! `y/x`; we mark the same cells with `*` using the paper's `b/x <= 1/20`
//! rule of thumb.

use rp_stats::ratio::{is_disclosive_rule_of_thumb, laplace_disclosure_indicator};

/// The paper's row settings: Laplace scales with their ε at Δ = 2.
pub const SCALES: [(f64, f64); 4] = [(10.0, 0.2), (20.0, 0.1), (40.0, 0.05), (200.0, 0.01)];

/// The paper's column settings: true base-query answers.
pub const ANSWERS: [f64; 5] = [5000.0, 1000.0, 500.0, 200.0, 100.0];

/// One cell of the grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Cell {
    /// Laplace scale `b`.
    pub b: f64,
    /// True answer `x`.
    pub x: f64,
    /// The indicator `2(b/x)²`.
    pub indicator: f64,
    /// Whether the rule of thumb `b/x <= 1/20` flags the cell disclosive.
    pub disclosive: bool,
}

/// Computes the full grid in the paper's layout.
pub fn run() -> Vec<Vec<Table2Cell>> {
    SCALES
        .iter()
        .map(|&(b, _)| {
            ANSWERS
                .iter()
                .map(|&x| Table2Cell {
                    b,
                    x,
                    indicator: laplace_disclosure_indicator(b, x),
                    disclosive: is_disclosive_rule_of_thumb(b, x),
                })
                .collect()
        })
        .collect()
}

/// Renders the grid.
pub fn render(grid: &[Vec<Table2Cell>]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: 2(b/x)^2  (* = disclosive by the b/x <= 1/20 rule)"
    );
    let _ = write!(out, "{:<18}", "b \\ x");
    for &x in &ANSWERS {
        let _ = write!(out, "{x:<12}");
    }
    let _ = writeln!(out);
    for (row, &(b, eps)) in grid.iter().zip(SCALES.iter()) {
        let _ = write!(out, "b={b:<4} (eps={eps:<4})");
        for cell in row {
            let mark = if cell.disclosive { "*" } else { "" };
            let _ = write!(out, "{:<12}", format!("{:.6}{mark}", cell.indicator));
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_paper_values() {
        let grid = run();
        // Spot-check against the published Table 2.
        let cell = |bi: usize, xi: usize| grid[bi][xi].indicator;
        assert!((cell(0, 0) - 0.000008).abs() < 1e-9); // b=10, x=5000
        assert!((cell(1, 2) - 0.0032).abs() < 1e-9); // b=20, x=500
        assert!((cell(2, 4) - 0.32).abs() < 1e-9); // b=40, x=100
        assert!((cell(3, 3) - 2.0).abs() < 1e-9); // b=200, x=200
        assert!((cell(3, 4) - 8.0).abs() < 1e-9); // b=200, x=100
    }

    #[test]
    fn boldface_cells_match_rule_of_thumb() {
        let grid = run();
        // b=10: disclosive for x >= 200; b=200: only x = 5000... (200/5000
        // = 0.04 <= 0.05).
        assert!(grid[0][3].disclosive); // b=10, x=200
        assert!(!grid[2][4].disclosive); // b=40, x=100
        assert!(grid[3][0].disclosive); // b=200, x=5000
        assert!(!grid[3][1].disclosive); // b=200, x=1000
    }

    #[test]
    fn render_mentions_all_scales() {
        let text = render(&run());
        for (b, _) in SCALES {
            assert!(text.contains(&format!("b={b}")));
        }
    }
}
