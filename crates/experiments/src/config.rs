//! Shared experiment configuration: the paper's parameter table (Table 6)
//! and dataset fixtures.

use rp_core::generalize::Generalization;
use rp_core::groups::{PersonalGroups, SaSpec};
use rp_datagen::{adult, census};
use rp_table::Table;

/// The paper's Table 6 settings (defaults in bold there: p = 0.5,
/// λ = 0.3, δ = 0.3).
pub mod defaults {
    /// Default retention probability.
    pub const P: f64 = 0.5;
    /// Default relative-error threshold λ.
    pub const LAMBDA: f64 = 0.3;
    /// Default probability floor δ.
    pub const DELTA: f64 = 0.3;
    /// Sweep values for p.
    pub const P_SWEEP: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];
    /// Sweep values for λ.
    pub const LAMBDA_SWEEP: [f64; 5] = [0.1, 0.2, 0.3, 0.4, 0.5];
    /// Sweep values for δ.
    pub const DELTA_SWEEP: [f64; 5] = [0.1, 0.2, 0.3, 0.4, 0.5];
    /// CENSUS size sweep.
    pub const CENSUS_SIZES: [usize; 5] = [100_000, 200_000, 300_000, 400_000, 500_000];
    /// χ² significance for the NA generalization.
    pub const SIGNIFICANCE: f64 = 0.05;
    /// Perturbation runs averaged per measurement (the paper uses 10).
    pub const RUNS: usize = 10;
    /// Query-pool size (the paper uses 5,000).
    pub const POOL_SIZE: usize = 5_000;
}

/// A data set prepared for the Section-6 experiments: raw table, its
/// generalization, the generalized table and its personal groups.
#[derive(Debug, Clone)]
pub struct PreparedDataset {
    /// Human-readable name ("ADULT", "CENSUS 300K", ...).
    pub name: String,
    /// The raw synthetic table (original NA domains).
    pub raw: Table,
    /// The fitted χ² generalization.
    pub generalization: Generalization,
    /// The generalized table the experiments publish from.
    pub generalized: Table,
    /// Personal groups of the generalized table.
    pub groups: PersonalGroups,
    /// The sensitive attribute index.
    pub sa: usize,
}

impl PreparedDataset {
    /// Prepares a table: fit the generalization, rewrite, group.
    pub fn prepare(name: impl Into<String>, raw: Table, sa: usize) -> Self {
        let spec = SaSpec::new(&raw, sa);
        let generalization = Generalization::fit(&raw, &spec, defaults::SIGNIFICANCE);
        let generalized = generalization.apply(&raw);
        let gen_spec = SaSpec::new(&generalized, sa);
        let groups = PersonalGroups::build(&generalized, gen_spec);
        Self {
            name: name.into(),
            raw,
            generalization,
            generalized,
            groups,
            sa,
        }
    }

    /// The paper-sized ADULT fixture.
    pub fn adult() -> Self {
        Self::prepare("ADULT", adult::generate_default(), adult::attr::INCOME)
    }

    /// A reduced ADULT fixture for fast tests and benches.
    pub fn adult_small(rows: usize) -> Self {
        Self::prepare(
            format!("ADULT {rows}"),
            adult::generate(adult::AdultConfig {
                rows,
                ..adult::AdultConfig::default()
            }),
            adult::attr::INCOME,
        )
    }

    /// A CENSUS fixture of the given size (paper: 100K–500K, default 300K).
    pub fn census(rows: usize) -> Self {
        Self::prepare(
            format!("CENSUS {}K", rows / 1000),
            census::generate(census::CensusConfig {
                rows,
                ..census::CensusConfig::default()
            }),
            census::attr::OCCUPATION,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_adult_small_has_expected_shape() {
        let d = PreparedDataset::adult_small(8_000);
        assert_eq!(d.raw.rows(), 8_000);
        assert_eq!(d.generalized.rows(), 8_000);
        assert_eq!(d.sa, 4);
        assert!(d.groups.len() <= 2240);
        assert!(!d.groups.is_empty());
    }

    #[test]
    fn generalized_groups_use_generalized_domains() {
        let d = PreparedDataset::adult_small(8_000);
        let product: usize = d
            .groups
            .spec()
            .na()
            .iter()
            .map(|&a| d.generalized.schema().attribute(a).domain_size())
            .product();
        assert!(d.groups.len() <= product);
    }
}
