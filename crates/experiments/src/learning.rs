//! Extension experiment: statistical learning from the publication.
//!
//! A Naive Bayes classifier for the sensitive attribute is fitted four
//! ways — from the raw table, from reconstructed statistics of a UP
//! publication, of an SPS publication, and from an ε-DP histogram — then
//! evaluated on a held-out sample of the same synthetic population. The
//! paper's thesis predicts UP- and SPS-trained models to land close to
//! the raw ceiling ("enabling statistical learning") even though SPS
//! makes targeted personal reconstruction unreliable.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::privacy::PrivacyParams;
use rp_core::sps::{sps_histograms, up_histograms, SpsConfig};
use rp_dp::histogram::DpHistogram;
use rp_engine::QueryEngine;
use rp_learn::{NaiveBayes, SufficientStats};
use rp_table::{CountQuery, Table};

use crate::config::PreparedDataset;

/// Held-out accuracy of the four training paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearningResult {
    /// Trained on the raw (generalized) table — the ceiling.
    pub raw: f64,
    /// Trained on statistics reconstructed from a UP publication.
    pub up: f64,
    /// Trained on statistics reconstructed from an SPS publication.
    pub sps: f64,
    /// Trained on an ε-DP histogram's noisy statistics.
    pub dp: f64,
    /// Majority-class baseline on the test set.
    pub majority: f64,
}

/// Fits from DP-histogram statistics: noisy marginal sums take the place
/// of the reconstructed counts.
fn fit_from_dp(release: &DpHistogram, table: &Table, sa: usize, alpha: f64) -> NaiveBayes {
    let schema = table.schema();
    let m = schema.attribute(sa).domain_size();
    let na_attrs: Vec<usize> = (0..schema.arity()).filter(|&a| a != sa).collect();
    let class_counts: Vec<f64> = (0..m as u32)
        .map(|s| release.answer(&CountQuery::new(vec![], sa, s).expect("valid count query")))
        .collect();
    let feature_counts = na_attrs
        .iter()
        .map(|&a| {
            (0..schema.attribute(a).domain_size() as u32)
                .map(|v| {
                    (0..m as u32)
                        .map(|s| {
                            release.answer(
                                &CountQuery::new(vec![(a, v)], sa, s).expect("valid count query"),
                            )
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    NaiveBayes::fit(
        &SufficientStats {
            class_counts,
            feature_counts,
            na_attrs,
            sa_attr: sa,
        },
        alpha,
    )
}

/// Runs the comparison. The test set is drawn from the same generator
/// with a different seed, then generalized with the training
/// generalization so codes align.
pub fn run(
    train: &PreparedDataset,
    test_raw: &Table,
    p: f64,
    epsilon: f64,
    seed: u64,
) -> LearningResult {
    let sa = train.sa;
    let test = train.generalization.apply(test_raw);
    let params = PrivacyParams::new(0.3, 0.3);
    let alpha = 1.0;
    let mut rng = StdRng::seed_from_u64(seed);

    let raw_model = NaiveBayes::fit(&SufficientStats::from_raw(&train.generalized, sa), alpha);

    let up_engine = QueryEngine::from_histograms(
        &train.groups,
        up_histograms(&mut rng, &train.groups, p),
        train.generalized.schema(),
        p,
    );
    let up_model = NaiveBayes::fit(
        &SufficientStats::from_view(up_engine.view(), train.generalized.schema(), sa, p),
        alpha,
    );

    let sps_engine = QueryEngine::from_histograms(
        &train.groups,
        sps_histograms(&mut rng, &train.groups, SpsConfig { p, params }),
        train.generalized.schema(),
        p,
    );
    let sps_model = NaiveBayes::fit(
        &SufficientStats::from_view(sps_engine.view(), train.generalized.schema(), sa, p),
        alpha,
    );

    let mut attrs: Vec<usize> = (0..train.generalized.schema().arity()).collect();
    attrs.retain(|&a| a != sa);
    attrs.push(sa);
    let release = DpHistogram::release(&mut rng, &train.generalized, &attrs, epsilon);
    let dp_model = fit_from_dp(&release, &train.generalized, sa, alpha);

    // Majority baseline.
    let hist = test
        .histogram(sa)
        .expect("test-table codes are validated at construction");
    let majority = *hist.iter().max().expect("non-empty domain") as f64 / test.rows() as f64;

    LearningResult {
        raw: raw_model.accuracy(&test),
        up: up_model.accuracy(&test),
        sps: sps_model.accuracy(&test),
        dp: dp_model.accuracy(&test),
        majority,
    }
}

/// Renders the result.
pub fn render(r: &LearningResult) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "Naive Bayes accuracy predicting SA on held-out data");
    let _ = writeln!(out, "{:<40}accuracy", "training statistics");
    let _ = writeln!(out, "{:<40}{:.4}", "raw table (ceiling)", r.raw);
    let _ = writeln!(
        out,
        "{:<40}{:.4}",
        "reconstructed from UP publication", r.up
    );
    let _ = writeln!(
        out,
        "{:<40}{:.4}",
        "reconstructed from SPS publication", r.sps
    );
    let _ = writeln!(out, "{:<40}{:.4}", "eps-DP histogram", r.dp);
    let _ = writeln!(out, "{:<40}{:.4}", "majority-class baseline", r.majority);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_datagen::adult::{self, AdultConfig};

    #[test]
    fn publication_trained_models_track_the_raw_ceiling() {
        let train = PreparedDataset::adult_small(20_000);
        let test_raw = adult::generate(AdultConfig {
            rows: 6_000,
            seed: 0xBEEF,
        });
        let r = run(&train, &test_raw, 0.5, 1.0, 1);
        // All accuracies are valid probabilities and beat nothing weirdly.
        for acc in [r.raw, r.up, r.sps, r.dp, r.majority] {
            assert!((0.0..=1.0).contains(&acc), "{r:?}");
        }
        // The raw model must beat majority (income is predictable).
        assert!(r.raw > r.majority, "{r:?}");
        // The paper's claim: learning survives the publications.
        assert!(r.up > r.raw - 0.05, "UP-trained too weak: {r:?}");
        assert!(r.sps > r.raw - 0.08, "SPS-trained too weak: {r:?}");
    }

    #[test]
    fn render_lists_all_paths() {
        let r = LearningResult {
            raw: 0.8,
            up: 0.79,
            sps: 0.77,
            dp: 0.8,
            majority: 0.7,
        };
        let text = render(&r);
        for needle in ["raw table", "UP", "SPS", "DP histogram", "majority"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
