//! Figures 3 and 5: average relative error of count queries answered from
//! the UP and SPS publications, swept over p, λ, δ and (CENSUS) `|D|`.
//!
//! Utility protocol of Section 6.1: a pool of 5,000 selective queries, the
//! estimator `est = |S*| · F′`, relative error `|est − ans| / ans`
//! averaged over the pool, then averaged again over 10 independent
//! perturbation runs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::privacy::PrivacyParams;
use rp_core::sps::{sps_histograms, up_histograms, SpsConfig};
use rp_datagen::querypool::{QueryPool, QueryPoolConfig};
use rp_engine::{PreparedQueries, QueryEngine};

use crate::config::{defaults, PreparedDataset};
use crate::violation::SweepAxis;

/// One sweep point: the mean relative error of both methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorPoint {
    /// The swept parameter's value.
    pub value: f64,
    /// Average relative error answering from plain uniform perturbation.
    pub up: f64,
    /// Average relative error answering from the SPS publication.
    pub sps: f64,
}

/// One relative-error sweep (a sub-figure of Figures 3/5).
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorSweep {
    /// Data set name.
    pub dataset: String,
    /// The swept axis.
    pub axis: SweepAxis,
    /// The sweep points.
    pub points: Vec<ErrorPoint>,
}

/// Protocol knobs (pool size and run count shrink for tests/benches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorProtocol {
    /// Queries in the pool.
    pub pool_size: usize,
    /// Perturbation runs averaged.
    pub runs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ErrorProtocol {
    fn default() -> Self {
        Self {
            pool_size: defaults::POOL_SIZE,
            runs: defaults::RUNS,
            seed: 0x5EED_E881,
        }
    }
}

/// Mean relative error of UP and SPS for one `(p, λ, δ)` setting.
///
/// The query pool and its prepared match index are computed by the caller
/// so sweeps reuse them across settings: the index depends only on the
/// group keys, which every perturbed engine below shares.
fn measure(
    dataset: &PreparedDataset,
    pool: &QueryPool,
    prepared: &PreparedQueries,
    p: f64,
    params: PrivacyParams,
    runs: usize,
    rng: &mut StdRng,
) -> (f64, f64) {
    let groups = &dataset.groups;
    let schema = dataset.generalized.schema();
    let mut up_total = 0.0;
    let mut sps_total = 0.0;
    for _ in 0..runs {
        let up_engine =
            QueryEngine::from_histograms(groups, up_histograms(rng, groups, p), schema, p);
        // SPS scaling keeps group sizes near the original, so the same
        // index applies; supports are re-read from the SPS engine.
        let sps_engine = QueryEngine::from_histograms(
            groups,
            sps_histograms(rng, groups, SpsConfig { p, params }),
            schema,
            p,
        );
        up_total += up_engine
            .mean_relative_error(pool, prepared)
            .expect("prepared index matches the pool");
        sps_total += sps_engine
            .mean_relative_error(pool, prepared)
            .expect("prepared index matches the pool");
    }
    (up_total / runs as f64, sps_total / runs as f64)
}

/// Builds the query pool and its prepared match index for a data set.
pub fn build_pool(
    dataset: &PreparedDataset,
    protocol: ErrorProtocol,
) -> (QueryPool, PreparedQueries) {
    let mut rng = StdRng::seed_from_u64(protocol.seed);
    let pool = QueryPool::generate(
        &mut rng,
        dataset.raw.schema(),
        &dataset.generalization,
        &dataset.groups,
        QueryPoolConfig {
            pool_size: protocol.pool_size,
            ..QueryPoolConfig::default()
        },
    );
    // Any histogram set gives the same keys; a base engine over the raw
    // histograms prepares the index once.
    let base = QueryEngine::from_histograms(
        &dataset.groups,
        dataset
            .groups
            .groups()
            .iter()
            .map(|g| g.sa_hist.clone())
            .collect(),
        dataset.generalized.schema(),
        defaults::P,
    );
    let prepared = base
        .prepare_pool(&pool)
        .expect("pool queries fit the generalized schema");
    (pool, prepared)
}

/// Runs one sweep, holding the other parameters at the paper's defaults.
pub fn sweep(
    dataset: &PreparedDataset,
    axis: SweepAxis,
    values: &[f64],
    protocol: ErrorProtocol,
) -> ErrorSweep {
    let (pool, index) = build_pool(dataset, protocol);
    let mut rng = StdRng::seed_from_u64(protocol.seed ^ 0xABCD);
    let points = values
        .iter()
        .map(|&value| {
            let (p, lambda, delta) = match axis {
                SweepAxis::P => (value, defaults::LAMBDA, defaults::DELTA),
                SweepAxis::Lambda => (defaults::P, value, defaults::DELTA),
                SweepAxis::Delta => (defaults::P, defaults::LAMBDA, value),
            };
            let params = PrivacyParams::new(lambda, delta);
            let (up, sps) = measure(dataset, &pool, &index, p, params, protocol.runs, &mut rng);
            ErrorPoint { value, up, sps }
        })
        .collect();
    ErrorSweep {
        dataset: dataset.name.clone(),
        axis,
        points,
    }
}

/// The paper's three sweeps for one data set (Figure 3 on ADULT, the first
/// three panels of Figure 5 on CENSUS).
pub fn run_all(dataset: &PreparedDataset, protocol: ErrorProtocol) -> Vec<ErrorSweep> {
    vec![
        sweep(dataset, SweepAxis::P, &defaults::P_SWEEP, protocol),
        sweep(
            dataset,
            SweepAxis::Lambda,
            &defaults::LAMBDA_SWEEP,
            protocol,
        ),
        sweep(dataset, SweepAxis::Delta, &defaults::DELTA_SWEEP, protocol),
    ]
}

/// The `|D|` panel of Figure 5: relative error at defaults across CENSUS
/// sizes.
pub fn census_size_sweep(sizes: &[usize], protocol: ErrorProtocol) -> ErrorSweep {
    let params = PrivacyParams::new(defaults::LAMBDA, defaults::DELTA);
    let mut points = Vec::with_capacity(sizes.len());
    for &rows in sizes {
        let dataset = PreparedDataset::census(rows);
        let (pool, index) = build_pool(&dataset, protocol);
        let mut rng = StdRng::seed_from_u64(protocol.seed ^ rows as u64);
        let (up, sps) = measure(
            &dataset,
            &pool,
            &index,
            defaults::P,
            params,
            protocol.runs,
            &mut rng,
        );
        points.push(ErrorPoint {
            value: rows as f64,
            up,
            sps,
        });
    }
    ErrorSweep {
        dataset: "CENSUS".to_string(),
        axis: SweepAxis::P, // size axis; label handled by the renderer
        points,
    }
}

/// Renders a sweep with a custom axis label.
pub fn render(sweep: &ErrorSweep, axis_label: &str) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: avg relative error vs {axis_label} (defaults p={}, lambda={}, delta={})",
        sweep.dataset,
        defaults::P,
        defaults::LAMBDA,
        defaults::DELTA
    );
    let _ = writeln!(out, "{:<12}{:<12}{:<12}", axis_label, "UP", "SPS");
    for pt in &sweep.points {
        let _ = writeln!(out, "{:<12}{:<12.4}{:<12.4}", pt.value, pt.up, pt.sps);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_protocol() -> ErrorProtocol {
        ErrorProtocol {
            pool_size: 150,
            runs: 3,
            seed: 9,
        }
    }

    #[test]
    fn sps_error_dominates_up_error() {
        // SPS trades accuracy for privacy: its error must be at least UP's
        // (up to Monte-Carlo slack) and both must be sane fractions.
        let d = PreparedDataset::adult_small(20_000);
        let s = sweep(&d, SweepAxis::P, &[0.5], test_protocol());
        let pt = s.points[0];
        assert!(pt.up > 0.0 && pt.up < 1.5, "UP error {pt:?}");
        assert!(pt.sps >= pt.up * 0.9, "SPS should not beat UP: {pt:?}");
    }

    #[test]
    fn error_decreases_with_p_for_up() {
        // More retention ⇒ less noise ⇒ smaller UP error.
        let d = PreparedDataset::adult_small(20_000);
        let s = sweep(&d, SweepAxis::P, &[0.1, 0.9], test_protocol());
        assert!(
            s.points[0].up > s.points[1].up,
            "UP error should fall with p: {:?}",
            s.points
        );
    }

    #[test]
    fn pool_reuse_is_deterministic() {
        let d = PreparedDataset::adult_small(10_000);
        let a = sweep(&d, SweepAxis::Delta, &[0.3], test_protocol());
        let b = sweep(&d, SweepAxis::Delta, &[0.3], test_protocol());
        assert_eq!(a, b);
    }

    #[test]
    fn render_has_both_methods() {
        let d = PreparedDataset::adult_small(10_000);
        let s = sweep(&d, SweepAxis::Lambda, &[0.3], test_protocol());
        let text = render(&s, "lambda");
        assert!(text.contains("UP") && text.contains("SPS"));
    }
}
