//! `rpctl` — reconstruction-privacy control for CSV microdata.
//!
//! A user-facing workflow tool: point it at a CSV file (header + one
//! record per line, all attributes categorical), name the sensitive
//! column, and it will audit, publish, query or serve.
//!
//! ```text
//! rpctl audit   --input data.csv --sa Income [--p 0.5 --lambda 0.3 --delta 0.3]
//! rpctl publish --input data.csv --sa Income --output release.rppub
//!               [--csv published.csv --p 0.5 --lambda 0.3 --delta 0.3
//!                --no-generalize --seed N --threads N]
//! rpctl publish --adult adult.data --sa Income --output release.rppub
//! rpctl query   --publication release.rppub --where Gender=Male --value >50K
//!               [--raw data.csv]
//! rpctl query   --connect HOST:PORT --where Gender=Male --value >50K
//!               [--release NAME --timeout MS]
//! rpctl serve   --publication release.rppub
//!               [--listen HOST:PORT --max-conns N --cache N
//!                --read-timeout MS --write-timeout MS]
//!               [--wal stream.rpwal --state-out state.rppub --max-resident N
//!                --commit-batch N --commit-window MS --fault-fsync-at N]
//! rpctl serve   --release alpha=a.rppub --release beta=b.rppub
//!               [--listen HOST:PORT --max-conns N --cache N]
//!               [--wal stream.rpwal ...]   # stream attaches to the first release
//! rpctl releases --connect HOST:PORT
//! rpctl reload  --connect HOST:PORT --release NAME
//! rpctl metrics --connect HOST:PORT
//! rpctl trace   --connect HOST:PORT [-n N]
//! rpctl bakeoff --input data.csv --sa Income
//!               [--p P --lambda L --delta D --seed N]
//!               [--dp-epsilon E --dp-delta D --dp-p P --max-queries N --detail N]
//! rpctl ingest  --connect HOST:PORT --input new.csv
//! rpctl ingest  --publication state.rppub --wal stream.rpwal --input new.csv
//!               --output state2.rppub [--max-resident N --commit-batch N]
//! rpctl replay  --publication base-or-snapshot.rppub --wal stream.rpwal
//!               --output replayed.rppub
//! rpctl compact --wal stream.rpwal [--output compacted.rpwal]
//! ```
//!
//! `publish` runs the full paper pipeline — χ²-generalization of the
//! public attributes (Section 3.4), the (λ, δ) design check (Corollary 4)
//! and SPS enforcement (Section 5) — through `rp_engine::Publisher`, and
//! writes a `Publication` artifact that carries the published records
//! *and* every estimator parameter (`p`, λ, δ, seed, SPS counters).
//! Grouping parallelism defaults to the machine's available cores
//! (override with `--threads`); the release is byte-identical at every
//! thread count.
//!
//! `query` and `serve` answer count queries through a
//! `rp_engine::QueryService` with the MLE estimator `est = |S*|·F′` and
//! 95% confidence intervals — no parameter re-derivation out-of-band.
//! `serve` runs the typed line protocol (`rp_engine::protocol`) over
//! stdin/stdout, or over TCP with `--listen` (thread-per-connection over
//! one shared engine, bounded answer cache, connection cap); `query
//! --connect` is the matching TCP client.
//!
//! With `--wal`, `serve` becomes a **streaming** server: `insert`/`flush`
//! requests mutate the live release (each record perturbed on arrival,
//! groups re-sampled through SPS when they cross `sg`), every mutation is
//! write-ahead logged, `flush` syncs the log and writes the v2 snapshot
//! to `--state-out`, and `--max-resident` bounds the owner-side memory by
//! spilling cold groups. `--commit-batch N` / `--commit-window MS` turn on
//! group commit: the WAL is fsynced every N events (or at least every MS
//! milliseconds while events are pending) instead of only on explicit
//! `flush`, amortizing the sync cost over a batch — the logged bytes are
//! identical either way, only durability *timing* changes. `ingest` feeds
//! a CSV into a streaming server (over TCP, or locally straight into the
//! WAL); `replay` reconstructs the stream state from artifact + WAL and
//! writes the snapshot — byte-identical to the live run's, which is the
//! determinism contract extended to streams. `compact` rewrites a WAL
//! dropping events superseded by a later re-publication (their effect
//! moves into per-group state records) — replay of the compacted log is
//! byte-identical to replay of the full one.
//!
//! With repeated `--release NAME=PATH` flags (instead of `--publication`),
//! `serve` hosts a **multi-tenant catalog**: every named artifact gets its
//! own `QueryService` — its own answer cache and counters — and sessions
//! route between them with the rp/3 verbs (`use NAME`, `releases`,
//! `reload NAME`, or a one-shot `count@NAME ...`). The first `--release`
//! is the default tenant that un-qualified verbs hit, so rp/2-era request
//! streams keep working unchanged. `releases` and `reload` are the
//! matching TCP clients; `query --connect --release NAME` targets one
//! tenant by sending `use` first (and trusts the `using` response — not
//! the HELLO banner — for that release's SA column and `p`).
//!
//! `bakeoff` publishes one CSV under both philosophies — the paper's SPS
//! data perturbation and a calibrated binomial-DP contingency release
//! (Theorem 1 of arXiv 1805.10559) — and scores the same query pool
//! against both, reporting per-query estimates/CI widths and per-mechanism
//! bias, |error|, RMSE, relative error and CI width.
//!
//! `publish --adult <path>` loads the raw UCI ADULT file when it exists
//! (falling back to `RP_ADULT_PATH`, then to the synthetic shape-matched
//! generator), so paper figures can be validated against the real data.
//!
//! Robustness knobs: every TCP client arms a socket read deadline
//! (`--timeout MS`, default 30000, `0` disables) so a stalled server
//! produces a clear error and a nonzero exit instead of blocking forever;
//! `serve` can arm per-connection `--read-timeout`/`--write-timeout`
//! deadlines so idle sessions are reaped and their connection slots
//! freed. `--fault-fsync-at N` arms deterministic fault injection on a
//! streaming release — the Nth WAL fsync fails, the stream poisons and
//! degrades to read-only (`error code=degraded`), and a catalog `reload`
//! recovers it from disk. That flag exists for the fault-matrix CI round
//! and for rehearsing the degradation contract; never use it in production.
//!
//! Observability (rp/5): `metrics` scrapes a live server's counter and
//! latency-histogram registry (`rp_engine::obs`) — p50/p90/p99/max per
//! instrumented stage — and `trace` tails its bounded ring of structured
//! events (session lifecycle, cache hit/miss, commit flushes, faults,
//! degradation). `serve --trace-buffer N` resizes that ring (`0`
//! disables tracing). Scraping reads the registry without touching any
//! response bytes of the other verbs.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use rp_core::audit::{audit, render as render_audit};
use rp_core::generalize::Generalization;
use rp_core::groups::{PersonalGroups, SaSpec};
use rp_core::privacy::PrivacyParams;
use rp_datagen::adult::AdultSource;
use rp_engine::{
    serve, serve_catalog, Catalog, FaultHandle, FaultSchedule, Publication, Publisher, QueryEngine,
    QueryService, Request, Response, Server, ServerConfig, ServiceConfig, StreamConfig,
    StreamPublisher, WireAnswer, WireQuery, WireRecord,
};
use rp_experiments::bakeoff;
use rp_table::{read_csv, write_csv, Pattern, Table, Term};

/// Parsed command-line options.
#[derive(Debug, Default)]
struct Options {
    command: String,
    input: Option<String>,
    publication: Option<String>,
    raw: Option<String>,
    output: Option<String>,
    csv: Option<String>,
    sa: Option<String>,
    p: f64,
    lambda: f64,
    delta: f64,
    seed: u64,
    generalize: bool,
    conditions: Vec<(String, String)>,
    value: Option<String>,
    threads: Option<usize>,
    listen: Option<String>,
    connect: Option<String>,
    max_conns: usize,
    cache: usize,
    wal: Option<String>,
    state_out: Option<String>,
    max_resident: usize,
    commit_batch: u64,
    commit_window: u64,
    /// Client-side socket read deadline in ms (`0` disables).
    timeout: u64,
    /// Server-side per-connection read deadline in ms (`0` disables).
    read_timeout: u64,
    /// Server-side per-connection write deadline in ms (`0` disables).
    write_timeout: u64,
    /// Fail the Nth WAL fsync of a streaming release (`0` disables).
    fault_fsync_at: u64,
    adult: Option<String>,
    /// `--release` values: `NAME=PATH` pairs for `serve`, a bare release
    /// name for `query`/`reload`.
    releases: Vec<String>,
    dp_epsilon: f64,
    dp_delta: f64,
    dp_p: f64,
    max_queries: usize,
    detail: usize,
    /// `serve --trace-buffer N`: resize the obs trace ring (`0` disables).
    trace_buffer: Option<usize>,
    /// `trace -n N`: how many trailing trace events to fetch.
    trace_n: Option<u64>,
}

impl Options {
    /// The stream tuning the flags describe.
    fn stream_config(&self) -> StreamConfig {
        StreamConfig {
            max_resident: self.max_resident,
            commit_batch: self.commit_batch,
            commit_window_ms: self.commit_window,
        }
    }

    /// The server tuning the flags describe (`0` means no deadline).
    fn server_config(&self) -> ServerConfig {
        let deadline = |ms: u64| (ms > 0).then(|| Duration::from_millis(ms));
        ServerConfig {
            max_conns: self.max_conns,
            read_timeout: deadline(self.read_timeout),
            write_timeout: deadline(self.write_timeout),
        }
    }

    /// The client-side socket read deadline (`--timeout 0` disables).
    fn client_timeout(&self) -> Option<Duration> {
        (self.timeout > 0).then(|| Duration::from_millis(self.timeout))
    }

    /// The fault policy `--fault-fsync-at` describes: a scripted schedule
    /// failing exactly that WAL fsync, or passthrough when unset.
    fn fault_handle(&self) -> FaultHandle {
        if self.fault_fsync_at > 0 {
            Arc::new(FaultSchedule::fsync_at(self.fault_fsync_at))
        } else {
            rp_engine::fault::passthrough()
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rpctl audit   --input FILE --sa COLUMN [--p P --lambda L --delta D]\n  \
         rpctl publish --input FILE | --adult FILE --sa COLUMN --output FILE.rppub [--csv FILE.csv] [--p P --lambda L --delta D --no-generalize --seed N --threads N]\n  \
         rpctl query   --publication FILE.rppub --where COL=VALUE ... --value SA_VALUE [--raw FILE.csv]\n  \
         rpctl query   --connect HOST:PORT --where COL=VALUE ... --value SA_VALUE [--release NAME --timeout MS]\n  \
         rpctl serve   --publication FILE.rppub [--listen HOST:PORT --max-conns N --cache ENTRIES --read-timeout MS --write-timeout MS --trace-buffer N] [--wal FILE.rpwal --state-out FILE.rppub --max-resident N --commit-batch N --commit-window MS --fault-fsync-at N]\n  \
         rpctl serve   --release NAME=FILE.rppub [--release NAME=FILE.rppub ...] [--listen HOST:PORT --max-conns N --cache ENTRIES --read-timeout MS --write-timeout MS --trace-buffer N] [--wal FILE.rpwal ...]\n  \
         rpctl releases --connect HOST:PORT\n  \
         rpctl reload  --connect HOST:PORT --release NAME\n  \
         rpctl metrics --connect HOST:PORT\n  \
         rpctl trace   --connect HOST:PORT [-n N]\n  \
         rpctl bakeoff --input FILE.csv --sa COLUMN [--p P --lambda L --delta D --seed N --dp-epsilon E --dp-delta D --dp-p P --max-queries N --detail N]\n  \
         rpctl ingest  --connect HOST:PORT --input FILE.csv\n  \
         rpctl ingest  --publication FILE.rppub --wal FILE.rpwal --input FILE.csv --output FILE.rppub [--max-resident N --commit-batch N]\n  \
         rpctl replay  --publication FILE.rppub --wal FILE.rpwal --output FILE.rppub\n  \
         rpctl compact --wal FILE.rpwal [--output FILE.rpwal]"
    );
    ExitCode::from(2)
}

/// How long a TCP client waits on one socket read before declaring the
/// server stalled (`--timeout`, milliseconds; `0` disables).
const DEFAULT_CLIENT_TIMEOUT_MS: u64 = 30_000;

/// The machine's usable thread count — the default for `--threads`.
fn machine_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn parse(args: &[String]) -> Option<Options> {
    let mut opts = Options {
        p: rp_engine::publisher::DEFAULT_P,
        lambda: rp_engine::publisher::DEFAULT_LAMBDA,
        delta: rp_engine::publisher::DEFAULT_DELTA,
        seed: rp_engine::publisher::DEFAULT_SEED,
        generalize: true,
        max_conns: rp_engine::server::DEFAULT_MAX_CONNS,
        cache: rp_engine::service::DEFAULT_CACHE_ENTRIES,
        timeout: DEFAULT_CLIENT_TIMEOUT_MS,
        dp_epsilon: 1.0,
        dp_delta: 1e-6,
        dp_p: 0.5,
        detail: 16,
        ..Options::default()
    };
    let mut it = args.iter();
    opts.command = it.next()?.clone();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--input" => opts.input = Some(it.next()?.clone()),
            "--publication" => opts.publication = Some(it.next()?.clone()),
            "--raw" => opts.raw = Some(it.next()?.clone()),
            "--output" => opts.output = Some(it.next()?.clone()),
            "--csv" => opts.csv = Some(it.next()?.clone()),
            "--sa" => opts.sa = Some(it.next()?.clone()),
            "--p" => opts.p = it.next()?.parse().ok()?,
            "--lambda" => opts.lambda = it.next()?.parse().ok()?,
            "--delta" => opts.delta = it.next()?.parse().ok()?,
            "--seed" => opts.seed = it.next()?.parse().ok()?,
            "--no-generalize" => opts.generalize = false,
            "--where" => {
                let cond = it.next()?;
                let (col, value) = cond.split_once('=')?;
                opts.conditions.push((col.to_string(), value.to_string()));
            }
            "--value" => opts.value = Some(it.next()?.clone()),
            "--threads" => {
                let threads: usize = it.next()?.parse().ok()?;
                if threads == 0 {
                    return None;
                }
                opts.threads = Some(threads);
            }
            "--listen" => opts.listen = Some(it.next()?.clone()),
            "--connect" => opts.connect = Some(it.next()?.clone()),
            "--max-conns" => {
                opts.max_conns = it.next()?.parse().ok()?;
                if opts.max_conns == 0 {
                    return None;
                }
            }
            "--cache" => opts.cache = it.next()?.parse().ok()?,
            "--wal" => opts.wal = Some(it.next()?.clone()),
            "--state-out" => opts.state_out = Some(it.next()?.clone()),
            "--max-resident" => opts.max_resident = it.next()?.parse().ok()?,
            "--commit-batch" => opts.commit_batch = it.next()?.parse().ok()?,
            "--commit-window" => opts.commit_window = it.next()?.parse().ok()?,
            "--timeout" => opts.timeout = it.next()?.parse().ok()?,
            "--read-timeout" => opts.read_timeout = it.next()?.parse().ok()?,
            "--write-timeout" => opts.write_timeout = it.next()?.parse().ok()?,
            "--fault-fsync-at" => opts.fault_fsync_at = it.next()?.parse().ok()?,
            "--adult" => opts.adult = Some(it.next()?.clone()),
            "--release" => opts.releases.push(it.next()?.clone()),
            "--dp-epsilon" => opts.dp_epsilon = it.next()?.parse().ok()?,
            "--dp-delta" => opts.dp_delta = it.next()?.parse().ok()?,
            "--dp-p" => opts.dp_p = it.next()?.parse().ok()?,
            "--max-queries" => opts.max_queries = it.next()?.parse().ok()?,
            "--detail" => opts.detail = it.next()?.parse().ok()?,
            "--trace-buffer" => opts.trace_buffer = Some(it.next()?.parse().ok()?),
            "-n" | "--n" => opts.trace_n = Some(it.next()?.parse().ok()?),
            _ => return None,
        }
    }
    Some(opts)
}

fn load(path: &str) -> Result<Table, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_csv(BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn load_publication(opts: &Options) -> Result<Publication, String> {
    let path = opts
        .publication
        .as_deref()
        .ok_or("--publication is required")?;
    Publication::load_from_path(path).map_err(|e| format!("cannot load {path}: {e}"))
}

fn sa_attr(table: &Table, name: &str) -> Result<usize, String> {
    table
        .schema()
        .attr_id(name)
        .map_err(|e| format!("sensitive column: {e}"))
}

fn cmd_audit(opts: &Options) -> Result<(), String> {
    let input = opts.input.as_deref().ok_or("--input is required")?;
    let sa_name = opts.sa.as_deref().ok_or("--sa is required")?;
    let table = load(input)?;
    let sa = sa_attr(&table, sa_name)?;
    let params = PrivacyParams::new(opts.lambda, opts.delta);
    let spec = SaSpec::new(&table, sa);
    let (table, label) = if opts.generalize {
        let g = Generalization::fit(&table, &spec, 0.05);
        (g.apply(&table), "generalized")
    } else {
        (table.clone(), "raw")
    };
    let spec = SaSpec::new(&table, sa);
    let groups = PersonalGroups::build(&table, spec);
    println!(
        "{input}: {} records, {} personal groups ({label} public attributes)",
        table.rows(),
        groups.len()
    );
    print!("{}", render_audit(&audit(&groups, opts.p, params, 10)));
    Ok(())
}

fn cmd_publish(opts: &Options) -> Result<(), String> {
    let output = opts.output.as_deref().ok_or("--output is required")?;
    let sa_name = opts.sa.as_deref().ok_or("--sa is required")?;
    let table = match (&opts.adult, &opts.input) {
        (Some(_), Some(_)) => return Err("--input and --adult are mutually exclusive".into()),
        (Some(adult), None) => {
            let (table, source) =
                rp_datagen::adult::load_or_synthesize(Some(Path::new(adult.as_str())))
                    .map_err(|e| format!("cannot load UCI file: {e}"))?;
            match source {
                AdultSource::Uci(path) => {
                    println!(
                        "loaded UCI ADULT extract: {} ({} records)",
                        path.display(),
                        table.rows()
                    );
                }
                AdultSource::Synthetic => println!(
                    "no UCI file at {adult} (or ${}); using the synthetic ADULT table ({} records)",
                    rp_datagen::adult::RP_ADULT_PATH_ENV,
                    table.rows()
                ),
            }
            table
        }
        (None, Some(input)) => load(input)?,
        (None, None) => return Err("--input or --adult is required".into()),
    };
    let sa = sa_attr(&table, sa_name)?;
    let published_input = if opts.generalize {
        let spec = SaSpec::new(&table, sa);
        let g = Generalization::fit(&table, &spec, 0.05);
        let t = g.apply(&table);
        for ag in g.attributes() {
            let before = table.schema().attribute(ag.attr).domain_size();
            let after = ag.new_domain_size();
            if after < before {
                println!(
                    "generalized {}: {before} -> {after} values",
                    table.schema().attribute(ag.attr).name()
                );
            }
        }
        t
    } else {
        table
    };
    // Grouping parallelism defaults to the machine's core count; the
    // deterministic shard merge keeps the release byte-identical for
    // every (shards, threads) choice, so this is purely an execution knob.
    let threads = opts.threads.unwrap_or_else(machine_threads);
    let shards = if threads > 1 { threads * 4 } else { 1 };
    if threads > 1 {
        println!("grouping on {threads} threads ({shards} shards)");
    }
    let publication = Publisher::new(published_input)
        .sa(sa)
        .privacy(opts.lambda, opts.delta)
        .retention(opts.p)
        .seed(opts.seed)
        .parallelism(shards, threads)
        .publish()
        .map_err(|e| e.to_string())?;
    let check = publication.check();
    println!(
        "design check: vg = {:.2}%, vr = {:.2}%",
        100.0 * check.vg(),
        100.0 * check.vr()
    );
    let stats = publication.stats();
    println!(
        "SPS: sampled {} of {} groups; publishing {} records",
        stats.groups_sampled, stats.groups, stats.output_records
    );
    publication
        .save_to_path(output)
        .map_err(|e| format!("cannot write {output}: {e}"))?;
    println!("wrote {output} (p = {}, seed = {})", opts.p, opts.seed);
    if let Some(csv_path) = opts.csv.as_deref() {
        let file = File::create(csv_path).map_err(|e| format!("cannot create {csv_path}: {e}"))?;
        write_csv(publication.table(), BufWriter::new(file))
            .map_err(|e| format!("cannot write: {e}"))?;
        println!("wrote {csv_path} (records only, no metadata)");
    }
    Ok(())
}

fn cmd_query(opts: &Options) -> Result<(), String> {
    if let Some(addr) = opts.connect.as_deref() {
        return cmd_query_remote(opts, addr);
    }
    let value = opts.value.as_deref().ok_or("--value is required")?;
    let publication = load_publication(opts)?;
    let engine = QueryEngine::new(&publication);
    let mut conditions: Vec<(&str, &str)> = opts
        .conditions
        .iter()
        .map(|(c, v)| (c.as_str(), v.as_str()))
        .collect();
    let sa_name = publication.sa_name().to_string();
    conditions.push((&sa_name, value));
    let query = engine
        .query_from_values(&conditions)
        .map_err(|e| e.to_string())?;
    let answer = engine.answer(&query).map_err(|e| e.to_string())?;
    print_answer(&WireAnswer::from(&answer), publication.p(), "artifact");
    if answer.support == 0 {
        return Ok(());
    }
    if let Some(raw_path) = opts.raw.as_deref() {
        match true_answer(&load(raw_path)?, &conditions) {
            Ok(truth) => println!("(true answer on {raw_path}: {truth})"),
            Err(msg) => println!("(no true answer on {raw_path}: {msg})"),
        }
    }
    Ok(())
}

/// Renders one answer the same way for both query modes (local artifact
/// and TCP client); `p_source` names where `p` came from.
fn print_answer(answer: &WireAnswer, p: f64, p_source: &str) {
    if answer.support == 0 {
        println!("no published records match the WHERE conditions; estimate = 0");
        return;
    }
    println!(
        "estimate = {:.1} records ({} matching rows, reconstructed frequency {:.4}, \
         p = {p} from the {p_source})",
        answer.estimate, answer.support, answer.frequency
    );
    if let Some((lo, hi)) = answer.ci {
        println!(
            "95% CI for the frequency: [{lo:.4}, {hi:.4}] -> counts [{:.1}, {:.1}]",
            answer.support as f64 * lo,
            answer.support as f64 * hi
        );
    }
}

/// An open client session after the `HELLO` handshake: the socket halves
/// plus the banner's release description.
struct RemoteSession {
    addr: String,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The armed socket read deadline — kept for the timeout message.
    timeout: Option<Duration>,
    sa: String,
    records: u64,
    p: f64,
}

impl RemoteSession {
    /// Connects, reads the banner, and checks the protocol revision —
    /// the shared head of every TCP client (`query --connect`,
    /// `ingest --connect`). `timeout` arms a socket read deadline so a
    /// stalled server yields a clear error instead of blocking forever.
    fn connect(addr: &str, timeout: Option<Duration>) -> Result<Self, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        stream
            .set_read_timeout(timeout)
            .map_err(|e| format!("cannot arm read timeout on {addr}: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone socket: {e}"))?,
        );
        let mut session = Self {
            addr: addr.to_string(),
            reader,
            writer: stream,
            timeout,
            sa: String::new(),
            records: 0,
            p: 0.0,
        };
        let version = match session.read_response()? {
            Response::Hello {
                version,
                sa,
                records,
                p,
                ..
            } => {
                session.sa = sa;
                session.records = records;
                session.p = p;
                version
            }
            // A server at its connection cap refuses with one structured
            // line before any banner — surface the code and retry hint.
            Response::Error { code, message } => {
                return Err(format!("server refused ({code}): {message}"));
            }
            other => {
                return Err(format!(
                    "{addr} did not send a HELLO banner (got `{}`)",
                    other.encode()
                ));
            }
        };
        if version != rp_engine::PROTOCOL_VERSION {
            return Err(format!(
                "{addr} speaks rp/{version}, this client speaks rp/{}; upgrade one side",
                rp_engine::PROTOCOL_VERSION
            ));
        }
        eprintln!(
            "connected to {addr} (rp/{version}, {} records, sa = {})",
            session.records, session.sa
        );
        Ok(session)
    }

    fn read_response(&mut self) -> Result<Response, String> {
        let mut line = String::new();
        self.reader.read_line(&mut line).map_err(|e| {
            // A timed-out blocking read surfaces as WouldBlock (Unix) or
            // TimedOut (Windows); either way the server stalled, not us.
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                let ms = self.timeout.map_or(0, |t| t.as_millis());
                format!(
                    "no response from {} within {ms} ms; the server may be stalled \
                     (raise or disable the deadline with --timeout)",
                    self.addr
                )
            } else {
                format!("read from {}: {e}", self.addr)
            }
        })?;
        if line.is_empty() {
            return Err(format!("{} closed the connection", self.addr));
        }
        Response::parse(&line).map_err(|e| format!("bad response from {}: {e}", self.addr))
    }

    fn send(&mut self, request: &Request) -> Result<(), String> {
        writeln!(self.writer, "{}", request.encode())
            .map_err(|e| format!("write to {}: {e}", self.addr))
    }

    /// Switches the session to a named catalog release. The `using`
    /// response — not the HELLO banner, which described the *default*
    /// release — is the authority for the active release's SA column,
    /// record count and `p`, so the session fields are rebound from it.
    fn use_release(&mut self, name: &str) -> Result<(), String> {
        self.send(&Request::Use(name.to_string()))?;
        match self.read_response()? {
            Response::Using {
                release,
                sa,
                records,
                p,
                ..
            } => {
                self.sa = sa;
                self.records = records;
                self.p = p;
                eprintln!(
                    "using release {release} ({} records, sa = {})",
                    self.records, self.sa
                );
                Ok(())
            }
            Response::Error { code, message } => {
                Err(format!("cannot use release {name} ({code}): {message}"))
            }
            other => Err(format!("unexpected response: {}", other.encode())),
        }
    }
}

/// Speaks the `rp_engine::protocol` over TCP: HELLO banner (which names
/// the SA column), one `count` request, one response, `quit`.
fn cmd_query_remote(opts: &Options, addr: &str) -> Result<(), String> {
    let value = opts.value.as_deref().ok_or("--value is required")?;
    let mut session = RemoteSession::connect(addr, opts.client_timeout())?;
    // Against a catalog server, `--release` pins the tenant; the SA name
    // and `p` used below come from the `using` response, because the
    // HELLO banner described the default release, not this one.
    if let Some(name) = opts.releases.first() {
        session.use_release(name)?;
    }
    let p = session.p;
    let mut conditions: Vec<(String, String)> = opts.conditions.clone();
    conditions.push((session.sa.clone(), value.to_string()));
    session.send(&Request::Query(WireQuery::new(conditions.clone())))?;
    let response = session.read_response()?;
    // Best-effort farewell; the answer is already in hand.
    let _ = writeln!(session.writer, "quit");
    match response {
        Response::Answer(answer) => {
            print_answer(&answer, p, "server");
            // --raw is a purely client-side comparison; it works the same
            // against a remote server as against a local artifact, and
            // like the local mode it is skipped on empty support.
            if answer.support == 0 {
                return Ok(());
            }
            if let Some(raw_path) = opts.raw.as_deref() {
                let borrowed: Vec<(&str, &str)> = conditions
                    .iter()
                    .map(|(c, v)| (c.as_str(), v.as_str()))
                    .collect();
                match true_answer(&load(raw_path)?, &borrowed) {
                    Ok(truth) => println!("(true answer on {raw_path}: {truth})"),
                    Err(msg) => println!("(no true answer on {raw_path}: {msg})"),
                }
            }
            Ok(())
        }
        Response::Error { code, message } => Err(format!("server refused ({code}): {message}")),
        other => Err(format!("unexpected response: {}", other.encode())),
    }
}

/// Counts raw rows matching every `(column, value)` condition by resolving
/// the value strings against the raw schema. Generalized values ("a|b")
/// will not resolve there — the caller reports that instead of failing.
fn true_answer(raw: &Table, conditions: &[(&str, &str)]) -> Result<u64, String> {
    let schema = raw.schema();
    let mut resolved = Vec::with_capacity(conditions.len());
    for &(col, value) in conditions {
        let attr = schema.attr_id(col).map_err(|e| e.to_string())?;
        let code = schema
            .attribute(attr)
            .dictionary()
            .code(value)
            .ok_or_else(|| {
                format!("value `{value}` not in raw column `{col}` (generalized label?)")
            })?;
        resolved.push((attr, Term::Value(code)));
    }
    Ok(Pattern::new(resolved).count(raw))
}

fn cmd_serve(opts: &Options) -> Result<(), String> {
    if !opts.releases.is_empty() {
        if opts.publication.is_some() {
            return Err("--release is mutually exclusive with --publication".into());
        }
        return cmd_serve_catalog(opts);
    }
    apply_trace_buffer(opts);
    let publication = load_publication(opts)?;
    // The line protocol frames names and values as whitespace-separated
    // tokens; a non-token SA name even breaks the HELLO banner. Serve
    // anyway (other columns stay queryable) but say so up front.
    for attr in 0..publication.schema().arity() {
        let name = publication.schema().attribute(attr).name();
        if !rp_engine::protocol::is_token(name) {
            eprintln!(
                "warning: column `{name}` is not a protocol token (whitespace/`;`/`=`); \
                 it cannot be {} over the wire",
                if attr == publication.sa() {
                    "served — HELLO and info lines will not parse"
                } else {
                    "queried"
                }
            );
        }
    }
    let sa_name = publication.sa_name().to_string();
    let p = publication.p();
    let config = ServiceConfig {
        cache_entries: opts.cache,
    };
    let service = if let Some(wal) = opts.wal.as_deref() {
        if opts.fault_fsync_at > 0 {
            eprintln!(
                "fault injection armed: WAL fsync {} will fail and degrade the stream \
                 to read-only",
                opts.fault_fsync_at
            );
        }
        let stream = StreamPublisher::open_with(
            publication,
            Path::new(wal),
            opts.stream_config(),
            opts.fault_handle(),
        )
        .map_err(|e| format!("cannot open stream (wal = {wal}): {e}"))?;
        eprintln!(
            "streaming: wal = {wal}, {} events applied, {} live groups ({} records); \
             `insert COL=VALUE ...` to ingest, `flush` to commit{}",
            stream.wal_seq(),
            stream.live_groups(),
            stream.live_records(),
            match opts.state_out.as_deref() {
                Some(path) => format!(" (snapshot -> {path})"),
                None => String::new(),
            }
        );
        QueryService::streaming(stream, opts.state_out.as_deref().map(PathBuf::from), config)
    } else {
        QueryService::from_publication(&publication, config)
    };
    eprintln!(
        "serving {} records in {} groups (sa = {sa_name}, p = {p}, cache = {} entries); \
         one `count COL=VALUE ... {sa_name}=VALUE` query per line, `quit` to stop",
        service.engine().records(),
        service.engine().groups(),
        opts.cache,
    );
    if let Some(addr) = opts.listen.as_deref() {
        let server = Server::bind(addr, Arc::new(service), opts.server_config())
            .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
        let bound = server
            .local_addr()
            .map_err(|e| format!("cannot resolve listen address: {e}"))?;
        eprintln!(
            "listening on {bound} (max {} concurrent sessions); \
             connect with `rpctl query --connect {bound} ...`",
            opts.max_conns
        );
        let service = Arc::clone(server.service().expect("bound as a single-release server"));
        server.run().map_err(|e| format!("serve loop: {e}"))?;
        checkpoint_on_exit(&service);
    } else {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let stats =
            serve(&service, stdin.lock(), stdout.lock()).map_err(|e| format!("serve loop: {e}"))?;
        eprintln!(
            "served {} requests ({} answered, {} errors, {} cache hits, {} inserts, \
             {} degraded refusals, {} faults)",
            stats.requests,
            stats.answered,
            stats.errors,
            stats.cache_hits,
            stats.inserts,
            stats.degraded,
            stats.faults
        );
        checkpoint_on_exit(&service);
    }
    Ok(())
}

/// `--trace-buffer N` resizes the process-wide obs trace ring before the
/// serve loop starts (`0` disables tracing entirely).
fn apply_trace_buffer(opts: &Options) {
    if let Some(capacity) = opts.trace_buffer {
        rp_engine::obs::global().set_trace_capacity(capacity);
        eprintln!("trace ring: {capacity} events");
    }
}

/// Final durability point of a streaming server: sync the WAL (and write
/// the snapshot) so a graceful shutdown never loses acknowledged events.
fn checkpoint_on_exit(service: &QueryService) {
    match service.checkpoint() {
        Ok(Some(events)) => eprintln!("checkpoint: {events} events durable"),
        Ok(None) => {}
        Err(e) => eprintln!("warning: final checkpoint failed: {e}"),
    }
}

/// Multi-tenant serve: every `--release NAME=PATH` becomes one catalog
/// tenant with its own `QueryService`; the first named release is the
/// default that un-qualified (rp/2-style) verbs route to.
fn cmd_serve_catalog(opts: &Options) -> Result<(), String> {
    apply_trace_buffer(opts);
    let mut pairs = Vec::with_capacity(opts.releases.len());
    for spec in &opts.releases {
        let (name, path) = spec
            .split_once('=')
            .ok_or_else(|| format!("--release wants NAME=PATH, got `{spec}`"))?;
        pairs.push((name, path));
    }
    let config = ServiceConfig {
        cache_entries: opts.cache,
    };
    let catalog = Catalog::new(pairs[0].0).map_err(|e| e.to_string())?;
    for (i, &(name, path)) in pairs.iter().enumerate() {
        // With --wal the *first* release becomes the streaming tenant:
        // the catalog remembers its artifact+WAL source, so the rp/4
        // `reload` verb can rebuild it from disk — the recovery path for
        // a degraded stream.
        match opts.wal.as_deref().filter(|_| i == 0) {
            Some(wal) => catalog
                .open_stream_path(
                    name,
                    Path::new(path),
                    Path::new(wal),
                    opts.stream_config(),
                    opts.state_out.as_deref().map(PathBuf::from),
                    config,
                )
                .map_err(|e| format!("cannot open streaming release {name}: {e}"))?,
            None => catalog
                .open_path(name, Path::new(path), config)
                .map_err(|e| format!("cannot open release {name}: {e}"))?,
        }
    }
    if opts.fault_fsync_at > 0 {
        let wal = opts
            .wal
            .as_deref()
            .ok_or("--fault-fsync-at wants a streaming release; add --wal")?;
        // Swap the (passthrough) streaming tenant for one opened behind
        // the scripted schedule. `reload` rebuilds from the recorded
        // source — passthrough again — so recovery never re-enters an
        // injected schedule.
        let (name, path) = pairs[0];
        let publication =
            Publication::load_from_path(path).map_err(|e| format!("cannot load {path}: {e}"))?;
        let stream = StreamPublisher::open_with(
            publication,
            Path::new(wal),
            opts.stream_config(),
            opts.fault_handle(),
        )
        .map_err(|e| format!("cannot open stream (wal = {wal}): {e}"))?;
        let service = Arc::new(QueryService::streaming(
            stream,
            opts.state_out.as_deref().map(PathBuf::from),
            config,
        ));
        catalog
            .reload(name, service)
            .map_err(|e| format!("cannot arm faults on {name}: {e}"))?;
        eprintln!(
            "fault injection armed on release {name}: WAL fsync {} will fail and \
             degrade the stream to read-only (`reload {name}` recovers)",
            opts.fault_fsync_at
        );
    }
    for entry in catalog.list() {
        eprintln!(
            "release {}: {} records in {} groups (sa = {}){}",
            entry.name,
            entry.records,
            entry.groups,
            entry.sa,
            if entry.name == catalog.default_name() {
                " [default]"
            } else {
                ""
            }
        );
    }
    eprintln!(
        "catalog: {} releases (cache = {} entries each); `use NAME` to switch, \
         `releases` to list, `count@NAME ...` for one-shot routing",
        pairs.len(),
        opts.cache,
    );
    if let Some(addr) = opts.listen.as_deref() {
        let catalog = Arc::new(catalog);
        let server = Server::bind_catalog(addr, Arc::clone(&catalog), opts.server_config())
            .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
        let bound = server
            .local_addr()
            .map_err(|e| format!("cannot resolve listen address: {e}"))?;
        eprintln!(
            "listening on {bound} (max {} concurrent sessions); \
             connect with `rpctl query --connect {bound} --release NAME ...`",
            opts.max_conns
        );
        server.run().map_err(|e| format!("serve loop: {e}"))?;
        catalog_checkpoint_on_exit(&catalog);
    } else {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let stats = serve_catalog(&catalog, stdin.lock(), stdout.lock())
            .map_err(|e| format!("serve loop: {e}"))?;
        eprintln!(
            "served {} requests ({} answered, {} errors, {} cache hits, {} inserts, \
             {} degraded refusals, {} faults)",
            stats.requests,
            stats.answered,
            stats.errors,
            stats.cache_hits,
            stats.inserts,
            stats.degraded,
            stats.faults
        );
        catalog_checkpoint_on_exit(&catalog);
    }
    Ok(())
}

/// [`checkpoint_on_exit`] across every tenant of a catalog.
fn catalog_checkpoint_on_exit(catalog: &Catalog) {
    for (name, outcome) in catalog.checkpoint_all() {
        match outcome {
            Ok(Some(events)) => eprintln!("checkpoint {name}: {events} events durable"),
            Ok(None) => {}
            Err(e) => eprintln!("warning: final checkpoint of {name} failed: {e}"),
        }
    }
}

/// Lists a catalog server's releases over TCP.
fn cmd_releases(opts: &Options) -> Result<(), String> {
    let addr = opts.connect.as_deref().ok_or("--connect is required")?;
    let mut session = RemoteSession::connect(addr, opts.client_timeout())?;
    session.send(&Request::Releases)?;
    let response = session.read_response()?;
    let _ = writeln!(session.writer, "quit");
    match response {
        Response::Releases(entries) => {
            for e in &entries {
                println!(
                    "{}: {} records in {} groups (sa = {}{})",
                    e.name,
                    e.records,
                    e.groups,
                    e.sa,
                    if e.live { ", live" } else { "" }
                );
            }
            println!("{} releases", entries.len());
            Ok(())
        }
        Response::Error { code, message } => Err(format!("server refused ({code}): {message}")),
        other => Err(format!("unexpected response: {}", other.encode())),
    }
}

/// Hot-reloads one release of a catalog server from its source artifact.
fn cmd_reload(opts: &Options) -> Result<(), String> {
    let addr = opts.connect.as_deref().ok_or("--connect is required")?;
    let name = opts
        .releases
        .first()
        .ok_or("--release NAME names the release to reload")?;
    let mut session = RemoteSession::connect(addr, opts.client_timeout())?;
    session.send(&Request::Reload(name.clone()))?;
    let response = session.read_response()?;
    let _ = writeln!(session.writer, "quit");
    match response {
        Response::Reloaded {
            release,
            records,
            groups,
        } => {
            println!("reloaded {release}: {records} records in {groups} groups");
            Ok(())
        }
        Response::Error { code, message } => Err(format!("server refused ({code}): {message}")),
        other => Err(format!("unexpected response: {}", other.encode())),
    }
}

/// Scrapes a live server's metrics registry over TCP: every counter,
/// then every latency histogram with its bucket-derived quantiles.
fn cmd_metrics(opts: &Options) -> Result<(), String> {
    let addr = opts.connect.as_deref().ok_or("--connect is required")?;
    let mut session = RemoteSession::connect(addr, opts.client_timeout())?;
    session.send(&Request::Metrics)?;
    let response = session.read_response()?;
    let _ = writeln!(session.writer, "quit");
    match response {
        Response::Metrics {
            counters,
            histograms,
        } => {
            for (name, value) in &counters {
                println!("{name} = {value}");
            }
            for h in &histograms {
                println!(
                    "{}: count={} p50={}ns p90={}ns p99={}ns max={}ns mean={:.1}ns",
                    h.name, h.count, h.p50, h.p90, h.p99, h.max, h.mean
                );
            }
            println!(
                "{} counters, {} histograms",
                counters.len(),
                histograms.len()
            );
            Ok(())
        }
        Response::Error { code, message } => Err(format!("server refused ({code}): {message}")),
        other => Err(format!("unexpected response: {}", other.encode())),
    }
}

/// Tails a live server's trace ring over TCP: the most recent `-n N`
/// structured events (default: the whole retained ring), oldest first.
fn cmd_trace(opts: &Options) -> Result<(), String> {
    let addr = opts.connect.as_deref().ok_or("--connect is required")?;
    let mut session = RemoteSession::connect(addr, opts.client_timeout())?;
    session.send(&Request::Trace(opts.trace_n))?;
    let response = session.read_response()?;
    let _ = writeln!(session.writer, "quit");
    match response {
        Response::Trace(events) => {
            for e in &events {
                println!("{} {}", e.seq, e.label);
            }
            println!("{} trace events", events.len());
            Ok(())
        }
        Response::Error { code, message } => Err(format!("server refused ({code}): {message}")),
        other => Err(format!("unexpected response: {}", other.encode())),
    }
}

/// SPS vs binomial-DP on one CSV: publish both ways, answer the same
/// query pool, print per-query estimates and per-mechanism utility.
fn cmd_bakeoff(opts: &Options) -> Result<(), String> {
    let input = opts.input.as_deref().ok_or("--input is required")?;
    let sa_name = opts.sa.as_deref().ok_or("--sa is required")?;
    let table = load(input)?;
    let sa = sa_attr(&table, sa_name)?;
    let config = bakeoff::BakeoffConfig {
        p: opts.p,
        lambda: opts.lambda,
        delta: opts.delta,
        seed: opts.seed,
        dp_epsilon: opts.dp_epsilon,
        dp_delta: opts.dp_delta,
        dp_p: opts.dp_p,
        max_queries: opts.max_queries,
    };
    let report = bakeoff::run(&table, sa, &config)?;
    print!("{}", bakeoff::render(&report, opts.detail));
    Ok(())
}

/// Reads an ingest CSV (header + value rows) into `(columns, rows)`.
fn load_ingest_rows(path: &str) -> Result<(Vec<String>, Vec<Vec<String>>), String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut lines = BufReader::new(file).lines();
    let header = lines
        .next()
        .ok_or_else(|| format!("{path} is empty"))?
        .map_err(|e| format!("read {path}: {e}"))?;
    let columns: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line.map_err(|e| format!("read {path}: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let values: Vec<String> = line.split(',').map(|s| s.trim().to_string()).collect();
        if values.len() != columns.len() {
            return Err(format!(
                "{path} line {}: {} fields, expected {}",
                i + 2,
                values.len(),
                columns.len()
            ));
        }
        rows.push(values);
    }
    Ok((columns, rows))
}

fn cmd_ingest(opts: &Options) -> Result<(), String> {
    let input = opts.input.as_deref().ok_or("--input is required")?;
    let (columns, rows) = load_ingest_rows(input)?;
    if let Some(addr) = opts.connect.as_deref() {
        return cmd_ingest_remote(addr, opts.client_timeout(), &columns, &rows);
    }
    // Local ingest: straight into the WAL, then snapshot.
    let wal = opts
        .wal
        .as_deref()
        .ok_or("--wal is required (or --connect)")?;
    let output = opts.output.as_deref().ok_or("--output is required")?;
    let publication = load_publication(opts)?;
    let mut stream = StreamPublisher::open(publication, Path::new(wal), opts.stream_config())
        .map_err(|e| format!("cannot open stream (wal = {wal}): {e}"))?;
    let mut republished = 0u64;
    for (i, row) in rows.iter().enumerate() {
        let values: Vec<(&str, &str)> = columns
            .iter()
            .map(String::as_str)
            .zip(row.iter().map(String::as_str))
            .collect();
        let outcome = stream
            .insert_values(&values)
            .map_err(|e| format!("{input} record {}: {e}", i + 1))?;
        republished += u64::from(outcome.republished);
    }
    stream.flush().map_err(|e| format!("flush: {e}"))?;
    stream
        .save_snapshot(output)
        .map_err(|e| format!("cannot write {output}: {e}"))?;
    println!(
        "ingested {} records ({republished} re-publications); wal = {wal} ({} events), \
         snapshot = {output} ({} live groups, {} live records)",
        rows.len(),
        stream.wal_seq(),
        stream.live_groups(),
        stream.live_records()
    );
    Ok(())
}

/// Feeds the rows into a streaming server over TCP: one `insert` line per
/// record, then `flush` (durability on the server), then `quit`.
fn cmd_ingest_remote(
    addr: &str,
    timeout: Option<Duration>,
    columns: &[String],
    rows: &[Vec<String>],
) -> Result<(), String> {
    let mut session = RemoteSession::connect(addr, timeout)?;
    let mut republished = 0u64;
    for (i, row) in rows.iter().enumerate() {
        let record = WireRecord::new(
            columns
                .iter()
                .cloned()
                .zip(row.iter().cloned())
                .collect::<Vec<(String, String)>>(),
        );
        session.send(&Request::Insert(record))?;
        match session.read_response()? {
            Response::Inserted { republished: r, .. } => republished += u64::from(r),
            Response::Error { code, message } => {
                return Err(format!("record {} refused ({code}): {message}", i + 1));
            }
            other => return Err(format!("unexpected response: {}", other.encode())),
        }
    }
    session.send(&Request::Flush)?;
    let events = match session.read_response()? {
        Response::Flushed { events } => events,
        Response::Error { code, message } => {
            return Err(format!("flush refused ({code}): {message}"));
        }
        other => return Err(format!("unexpected response: {}", other.encode())),
    };
    let _ = writeln!(session.writer, "quit");
    println!(
        "ingested {} records over {addr} ({republished} re-publications); \
         server durable through event {events}",
        rows.len()
    );
    Ok(())
}

fn cmd_replay(opts: &Options) -> Result<(), String> {
    let wal = opts.wal.as_deref().ok_or("--wal is required")?;
    let output = opts.output.as_deref().ok_or("--output is required")?;
    let publication = load_publication(opts)?;
    let from_snapshot = publication.live().is_some();
    let mut stream = StreamPublisher::replay(publication, Path::new(wal), opts.stream_config())
        .map_err(|e| format!("replay failed: {e}"))?;
    stream
        .save_snapshot(output)
        .map_err(|e| format!("cannot write {output}: {e}"))?;
    println!(
        "replayed {} through event {} ({}): {} inserts, {} re-publications, \
         {} live groups, {} live records -> {output}",
        wal,
        stream.wal_seq(),
        if from_snapshot {
            "snapshot + tail"
        } else {
            "clean start"
        },
        stream.inserted(),
        stream.republished(),
        stream.live_groups(),
        stream.live_records()
    );
    Ok(())
}

fn cmd_compact(opts: &Options) -> Result<(), String> {
    let wal = opts.wal.as_deref().ok_or("--wal is required")?;
    // Default is in place: the rewrite is atomic (temp file + rename),
    // so a crash mid-compaction leaves the original log intact.
    let output = opts.output.as_deref().unwrap_or(wal);
    let stats = rp_engine::stream::wal::compact_wal(Path::new(wal), Path::new(output))
        .map_err(|e| format!("cannot compact {wal}: {e}"))?;
    println!(
        "compacted {wal} -> {output}: {} events in, {} retained, {} absorbed \
         into {} group state records (floor = event {})",
        stats.events_in, stats.events_out, stats.absorbed, stats.groups, stats.floor_seq
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(opts) = parse(&args) else {
        return usage();
    };
    let result = match opts.command.as_str() {
        "audit" => cmd_audit(&opts),
        "publish" => cmd_publish(&opts),
        "query" => cmd_query(&opts),
        "serve" => cmd_serve(&opts),
        "ingest" => cmd_ingest(&opts),
        "replay" => cmd_replay(&opts),
        "compact" => cmd_compact(&opts),
        "releases" => cmd_releases(&opts),
        "reload" => cmd_reload(&opts),
        "metrics" => cmd_metrics(&opts),
        "trace" => cmd_trace(&opts),
        "bakeoff" => cmd_bakeoff(&opts),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
