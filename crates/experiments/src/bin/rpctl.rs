//! `rpctl` — reconstruction-privacy control for CSV microdata.
//!
//! A user-facing workflow tool: point it at a CSV file (header + one
//! record per line, all attributes categorical), name the sensitive
//! column, and it will audit, publish or query.
//!
//! ```text
//! rpctl audit   --input data.csv --sa Income [--p 0.5 --lambda 0.3 --delta 0.3]
//! rpctl publish --input data.csv --sa Income --output published.csv
//!               [--p 0.5 --lambda 0.3 --delta 0.3 --no-generalize --seed N]
//! rpctl query   --input published.csv --raw data.csv --sa Income \
//!               --where Gender=Male --value >50K [--p 0.5]
//! ```
//!
//! `publish` runs the full paper pipeline: χ²-generalization of the public
//! attributes (Section 3.4), the (λ, δ) audit (Corollary 4), SPS
//! enforcement (Section 5), and writes the publishable CSV. `query`
//! answers a count query on a published file with the MLE estimator
//! `est = |S*|·F′` and a 95% confidence interval.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::audit::{audit, render as render_audit};
use rp_core::estimate::GroupedView;
use rp_core::generalize::Generalization;
use rp_core::groups::{PersonalGroups, SaSpec};
use rp_core::privacy::PrivacyParams;
use rp_core::sps::{sps, SpsConfig};
use rp_core::variance::confidence_interval;
use rp_table::{read_csv, write_csv, CountQuery, Table};

/// Parsed command-line options.
#[derive(Debug, Default)]
struct Options {
    command: String,
    input: Option<String>,
    raw: Option<String>,
    output: Option<String>,
    sa: Option<String>,
    p: f64,
    lambda: f64,
    delta: f64,
    seed: u64,
    generalize: bool,
    conditions: Vec<(String, String)>,
    value: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rpctl audit   --input FILE --sa COLUMN [--p P --lambda L --delta D]\n  \
         rpctl publish --input FILE --sa COLUMN --output FILE [--p P --lambda L --delta D --no-generalize --seed N]\n  \
         rpctl query   --input PUBLISHED --sa COLUMN --where COL=VALUE ... --value SA_VALUE [--p P]"
    );
    ExitCode::from(2)
}

fn parse(args: &[String]) -> Option<Options> {
    let mut opts = Options {
        p: 0.5,
        lambda: 0.3,
        delta: 0.3,
        seed: 0x5EED_0C71,
        generalize: true,
        ..Options::default()
    };
    let mut it = args.iter();
    opts.command = it.next()?.clone();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--input" => opts.input = Some(it.next()?.clone()),
            "--raw" => opts.raw = Some(it.next()?.clone()),
            "--output" => opts.output = Some(it.next()?.clone()),
            "--sa" => opts.sa = Some(it.next()?.clone()),
            "--p" => opts.p = it.next()?.parse().ok()?,
            "--lambda" => opts.lambda = it.next()?.parse().ok()?,
            "--delta" => opts.delta = it.next()?.parse().ok()?,
            "--seed" => opts.seed = it.next()?.parse().ok()?,
            "--no-generalize" => opts.generalize = false,
            "--where" => {
                let cond = it.next()?;
                let (col, value) = cond.split_once('=')?;
                opts.conditions.push((col.to_string(), value.to_string()));
            }
            "--value" => opts.value = Some(it.next()?.clone()),
            _ => return None,
        }
    }
    Some(opts)
}

fn load(path: &str) -> Result<Table, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_csv(BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn sa_attr(table: &Table, name: &str) -> Result<usize, String> {
    table
        .schema()
        .attr_id(name)
        .map_err(|e| format!("sensitive column: {e}"))
}

fn cmd_audit(opts: &Options) -> Result<(), String> {
    let input = opts.input.as_deref().ok_or("--input is required")?;
    let sa_name = opts.sa.as_deref().ok_or("--sa is required")?;
    let table = load(input)?;
    let sa = sa_attr(&table, sa_name)?;
    let params = PrivacyParams::new(opts.lambda, opts.delta);
    let spec = SaSpec::new(&table, sa);
    let (table, label) = if opts.generalize {
        let g = Generalization::fit(&table, &spec, 0.05);
        (g.apply(&table), "generalized")
    } else {
        (table.clone(), "raw")
    };
    let spec = SaSpec::new(&table, sa);
    let groups = PersonalGroups::build(&table, spec);
    println!(
        "{input}: {} records, {} personal groups ({label} public attributes)",
        table.rows(),
        groups.len()
    );
    print!("{}", render_audit(&audit(&groups, opts.p, params, 10)));
    Ok(())
}

fn cmd_publish(opts: &Options) -> Result<(), String> {
    let input = opts.input.as_deref().ok_or("--input is required")?;
    let output = opts.output.as_deref().ok_or("--output is required")?;
    let sa_name = opts.sa.as_deref().ok_or("--sa is required")?;
    let table = load(input)?;
    let sa = sa_attr(&table, sa_name)?;
    let params = PrivacyParams::new(opts.lambda, opts.delta);
    let spec = SaSpec::new(&table, sa);
    let published_input = if opts.generalize {
        let g = Generalization::fit(&table, &spec, 0.05);
        let t = g.apply(&table);
        for ag in g.attributes() {
            let before = table.schema().attribute(ag.attr).domain_size();
            let after = ag.new_domain_size();
            if after < before {
                println!(
                    "generalized {}: {before} -> {after} values",
                    table.schema().attribute(ag.attr).name()
                );
            }
        }
        t
    } else {
        table
    };
    let spec = SaSpec::new(&published_input, sa);
    let groups = PersonalGroups::build(&published_input, spec);
    let a = audit(&groups, opts.p, params, 5);
    println!(
        "audit: vg = {:.2}%, vr = {:.2}%",
        100.0 * a.report.vg(),
        100.0 * a.report.vr()
    );
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let out = sps(
        &mut rng,
        &published_input,
        &groups,
        SpsConfig { p: opts.p, params },
    );
    println!(
        "SPS: sampled {} of {} groups; publishing {} records",
        out.stats.groups_sampled, out.stats.groups, out.stats.output_records
    );
    let file = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    write_csv(&out.table, BufWriter::new(file)).map_err(|e| format!("cannot write: {e}"))?;
    println!("wrote {output}");
    Ok(())
}

fn cmd_query(opts: &Options) -> Result<(), String> {
    let input = opts.input.as_deref().ok_or("--input is required")?;
    let sa_name = opts.sa.as_deref().ok_or("--sa is required")?;
    let value = opts.value.as_deref().ok_or("--value is required")?;
    let published = load(input)?;
    let sa = sa_attr(&published, sa_name)?;
    let schema = published.schema();
    let mut conditions = Vec::new();
    for (col, val) in &opts.conditions {
        let attr = schema.attr_id(col).map_err(|e| format!("--where: {e}"))?;
        let code = schema
            .attribute(attr)
            .dictionary()
            .code(val)
            .ok_or_else(|| format!("--where: value `{val}` not found in column `{col}`"))?;
        conditions.push((attr, code));
    }
    let sa_code = schema
        .attribute(sa)
        .dictionary()
        .code(value)
        .ok_or_else(|| format!("--value: `{value}` not found in column `{sa_name}`"))?;
    let query = CountQuery::new(conditions, sa, sa_code);
    let spec = SaSpec::new(&published, sa);
    let m = spec.m();
    let groups = PersonalGroups::build(&published, spec);
    let view = GroupedView::from_histograms(
        &groups,
        groups.groups().iter().map(|g| g.sa_hist.clone()).collect(),
    );
    let (support, observed) = view.support_and_observed(&query);
    if support == 0 {
        println!("no published records match the WHERE conditions; estimate = 0");
        return Ok(());
    }
    let f_hat = rp_core::mle::reconstruct_frequency(observed, support, opts.p, m);
    let est = support as f64 * f_hat;
    let ci = confidence_interval(f_hat, support, opts.p, m, 0.95);
    println!(
        "estimate = {est:.1} records ({} matching rows, reconstructed frequency {f_hat:.4})",
        support
    );
    println!(
        "95% CI for the frequency: [{:.4}, {:.4}] -> counts [{:.1}, {:.1}]",
        ci.lo,
        ci.hi,
        support as f64 * ci.lo,
        support as f64 * ci.hi
    );
    if let Some(raw_path) = opts.raw.as_deref() {
        let raw = load(raw_path)?;
        let raw_query_ans = query.answer(&raw);
        println!("(true answer on {raw_path}: {raw_query_ans})");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(opts) = parse(&args) else {
        return usage();
    };
    let result = match opts.command.as_str() {
        "audit" => cmd_audit(&opts),
        "publish" => cmd_publish(&opts),
        "query" => cmd_query(&opts),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
