//! `rpctl` — reconstruction-privacy control for CSV microdata.
//!
//! A user-facing workflow tool: point it at a CSV file (header + one
//! record per line, all attributes categorical), name the sensitive
//! column, and it will audit, publish, query or serve.
//!
//! ```text
//! rpctl audit   --input data.csv --sa Income [--p 0.5 --lambda 0.3 --delta 0.3]
//! rpctl publish --input data.csv --sa Income --output release.rppub
//!               [--csv published.csv --p 0.5 --lambda 0.3 --delta 0.3
//!                --no-generalize --seed N --threads N]
//! rpctl query   --publication release.rppub --where Gender=Male --value >50K
//!               [--raw data.csv]
//! rpctl query   --connect HOST:PORT --where Gender=Male --value >50K
//! rpctl serve   --publication release.rppub
//!               [--listen HOST:PORT --max-conns N --cache N]
//! ```
//!
//! `publish` runs the full paper pipeline — χ²-generalization of the
//! public attributes (Section 3.4), the (λ, δ) design check (Corollary 4)
//! and SPS enforcement (Section 5) — through `rp_engine::Publisher`, and
//! writes a `Publication` artifact that carries the published records
//! *and* every estimator parameter (`p`, λ, δ, seed, SPS counters).
//! Grouping parallelism defaults to the machine's available cores
//! (override with `--threads`); the release is byte-identical at every
//! thread count.
//!
//! `query` and `serve` answer count queries through a
//! `rp_engine::QueryService` with the MLE estimator `est = |S*|·F′` and
//! 95% confidence intervals — no parameter re-derivation out-of-band.
//! `serve` runs the typed line protocol (`rp_engine::protocol`) over
//! stdin/stdout, or over TCP with `--listen` (thread-per-connection over
//! one shared engine, bounded answer cache, connection cap); `query
//! --connect` is the matching TCP client.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;

use rp_core::audit::{audit, render as render_audit};
use rp_core::generalize::Generalization;
use rp_core::groups::{PersonalGroups, SaSpec};
use rp_core::privacy::PrivacyParams;
use rp_engine::{
    serve, Publication, Publisher, QueryEngine, QueryService, Request, Response, Server,
    ServerConfig, ServiceConfig, WireAnswer, WireQuery,
};
use rp_table::{read_csv, write_csv, Pattern, Table, Term};

/// Parsed command-line options.
#[derive(Debug, Default)]
struct Options {
    command: String,
    input: Option<String>,
    publication: Option<String>,
    raw: Option<String>,
    output: Option<String>,
    csv: Option<String>,
    sa: Option<String>,
    p: f64,
    lambda: f64,
    delta: f64,
    seed: u64,
    generalize: bool,
    conditions: Vec<(String, String)>,
    value: Option<String>,
    threads: Option<usize>,
    listen: Option<String>,
    connect: Option<String>,
    max_conns: usize,
    cache: usize,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rpctl audit   --input FILE --sa COLUMN [--p P --lambda L --delta D]\n  \
         rpctl publish --input FILE --sa COLUMN --output FILE.rppub [--csv FILE.csv] [--p P --lambda L --delta D --no-generalize --seed N --threads N]\n  \
         rpctl query   --publication FILE.rppub --where COL=VALUE ... --value SA_VALUE [--raw FILE.csv]\n  \
         rpctl query   --connect HOST:PORT --where COL=VALUE ... --value SA_VALUE\n  \
         rpctl serve   --publication FILE.rppub [--listen HOST:PORT --max-conns N --cache ENTRIES]"
    );
    ExitCode::from(2)
}

/// The machine's usable thread count — the default for `--threads`.
fn machine_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn parse(args: &[String]) -> Option<Options> {
    let mut opts = Options {
        p: rp_engine::publisher::DEFAULT_P,
        lambda: rp_engine::publisher::DEFAULT_LAMBDA,
        delta: rp_engine::publisher::DEFAULT_DELTA,
        seed: rp_engine::publisher::DEFAULT_SEED,
        generalize: true,
        max_conns: rp_engine::server::DEFAULT_MAX_CONNS,
        cache: rp_engine::service::DEFAULT_CACHE_ENTRIES,
        ..Options::default()
    };
    let mut it = args.iter();
    opts.command = it.next()?.clone();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--input" => opts.input = Some(it.next()?.clone()),
            "--publication" => opts.publication = Some(it.next()?.clone()),
            "--raw" => opts.raw = Some(it.next()?.clone()),
            "--output" => opts.output = Some(it.next()?.clone()),
            "--csv" => opts.csv = Some(it.next()?.clone()),
            "--sa" => opts.sa = Some(it.next()?.clone()),
            "--p" => opts.p = it.next()?.parse().ok()?,
            "--lambda" => opts.lambda = it.next()?.parse().ok()?,
            "--delta" => opts.delta = it.next()?.parse().ok()?,
            "--seed" => opts.seed = it.next()?.parse().ok()?,
            "--no-generalize" => opts.generalize = false,
            "--where" => {
                let cond = it.next()?;
                let (col, value) = cond.split_once('=')?;
                opts.conditions.push((col.to_string(), value.to_string()));
            }
            "--value" => opts.value = Some(it.next()?.clone()),
            "--threads" => {
                let threads: usize = it.next()?.parse().ok()?;
                if threads == 0 {
                    return None;
                }
                opts.threads = Some(threads);
            }
            "--listen" => opts.listen = Some(it.next()?.clone()),
            "--connect" => opts.connect = Some(it.next()?.clone()),
            "--max-conns" => {
                opts.max_conns = it.next()?.parse().ok()?;
                if opts.max_conns == 0 {
                    return None;
                }
            }
            "--cache" => opts.cache = it.next()?.parse().ok()?,
            _ => return None,
        }
    }
    Some(opts)
}

fn load(path: &str) -> Result<Table, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_csv(BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn load_publication(opts: &Options) -> Result<Publication, String> {
    let path = opts
        .publication
        .as_deref()
        .ok_or("--publication is required")?;
    Publication::load_from_path(path).map_err(|e| format!("cannot load {path}: {e}"))
}

fn sa_attr(table: &Table, name: &str) -> Result<usize, String> {
    table
        .schema()
        .attr_id(name)
        .map_err(|e| format!("sensitive column: {e}"))
}

fn cmd_audit(opts: &Options) -> Result<(), String> {
    let input = opts.input.as_deref().ok_or("--input is required")?;
    let sa_name = opts.sa.as_deref().ok_or("--sa is required")?;
    let table = load(input)?;
    let sa = sa_attr(&table, sa_name)?;
    let params = PrivacyParams::new(opts.lambda, opts.delta);
    let spec = SaSpec::new(&table, sa);
    let (table, label) = if opts.generalize {
        let g = Generalization::fit(&table, &spec, 0.05);
        (g.apply(&table), "generalized")
    } else {
        (table.clone(), "raw")
    };
    let spec = SaSpec::new(&table, sa);
    let groups = PersonalGroups::build(&table, spec);
    println!(
        "{input}: {} records, {} personal groups ({label} public attributes)",
        table.rows(),
        groups.len()
    );
    print!("{}", render_audit(&audit(&groups, opts.p, params, 10)));
    Ok(())
}

fn cmd_publish(opts: &Options) -> Result<(), String> {
    let input = opts.input.as_deref().ok_or("--input is required")?;
    let output = opts.output.as_deref().ok_or("--output is required")?;
    let sa_name = opts.sa.as_deref().ok_or("--sa is required")?;
    let table = load(input)?;
    let sa = sa_attr(&table, sa_name)?;
    let published_input = if opts.generalize {
        let spec = SaSpec::new(&table, sa);
        let g = Generalization::fit(&table, &spec, 0.05);
        let t = g.apply(&table);
        for ag in g.attributes() {
            let before = table.schema().attribute(ag.attr).domain_size();
            let after = ag.new_domain_size();
            if after < before {
                println!(
                    "generalized {}: {before} -> {after} values",
                    table.schema().attribute(ag.attr).name()
                );
            }
        }
        t
    } else {
        table
    };
    // Grouping parallelism defaults to the machine's core count; the
    // deterministic shard merge keeps the release byte-identical for
    // every (shards, threads) choice, so this is purely an execution knob.
    let threads = opts.threads.unwrap_or_else(machine_threads);
    let shards = if threads > 1 { threads * 4 } else { 1 };
    if threads > 1 {
        println!("grouping on {threads} threads ({shards} shards)");
    }
    let publication = Publisher::new(published_input)
        .sa(sa)
        .privacy(opts.lambda, opts.delta)
        .retention(opts.p)
        .seed(opts.seed)
        .parallelism(shards, threads)
        .publish()
        .map_err(|e| e.to_string())?;
    let check = publication.check();
    println!(
        "design check: vg = {:.2}%, vr = {:.2}%",
        100.0 * check.vg(),
        100.0 * check.vr()
    );
    let stats = publication.stats();
    println!(
        "SPS: sampled {} of {} groups; publishing {} records",
        stats.groups_sampled, stats.groups, stats.output_records
    );
    publication
        .save_to_path(output)
        .map_err(|e| format!("cannot write {output}: {e}"))?;
    println!("wrote {output} (p = {}, seed = {})", opts.p, opts.seed);
    if let Some(csv_path) = opts.csv.as_deref() {
        let file = File::create(csv_path).map_err(|e| format!("cannot create {csv_path}: {e}"))?;
        write_csv(publication.table(), BufWriter::new(file))
            .map_err(|e| format!("cannot write: {e}"))?;
        println!("wrote {csv_path} (records only, no metadata)");
    }
    Ok(())
}

fn cmd_query(opts: &Options) -> Result<(), String> {
    if let Some(addr) = opts.connect.as_deref() {
        return cmd_query_remote(opts, addr);
    }
    let value = opts.value.as_deref().ok_or("--value is required")?;
    let publication = load_publication(opts)?;
    let engine = QueryEngine::new(&publication);
    let mut conditions: Vec<(&str, &str)> = opts
        .conditions
        .iter()
        .map(|(c, v)| (c.as_str(), v.as_str()))
        .collect();
    let sa_name = publication.sa_name().to_string();
    conditions.push((&sa_name, value));
    let query = engine
        .query_from_values(&conditions)
        .map_err(|e| e.to_string())?;
    let answer = engine.answer(&query).map_err(|e| e.to_string())?;
    print_answer(&WireAnswer::from(&answer), publication.p(), "artifact");
    if answer.support == 0 {
        return Ok(());
    }
    if let Some(raw_path) = opts.raw.as_deref() {
        match true_answer(&load(raw_path)?, &conditions) {
            Ok(truth) => println!("(true answer on {raw_path}: {truth})"),
            Err(msg) => println!("(no true answer on {raw_path}: {msg})"),
        }
    }
    Ok(())
}

/// Renders one answer the same way for both query modes (local artifact
/// and TCP client); `p_source` names where `p` came from.
fn print_answer(answer: &WireAnswer, p: f64, p_source: &str) {
    if answer.support == 0 {
        println!("no published records match the WHERE conditions; estimate = 0");
        return;
    }
    println!(
        "estimate = {:.1} records ({} matching rows, reconstructed frequency {:.4}, \
         p = {p} from the {p_source})",
        answer.estimate, answer.support, answer.frequency
    );
    if let Some((lo, hi)) = answer.ci {
        println!(
            "95% CI for the frequency: [{lo:.4}, {hi:.4}] -> counts [{:.1}, {:.1}]",
            answer.support as f64 * lo,
            answer.support as f64 * hi
        );
    }
}

/// Speaks the `rp_engine::protocol` over TCP: HELLO banner (which names
/// the SA column), one `count` request, one response, `quit`.
fn cmd_query_remote(opts: &Options, addr: &str) -> Result<(), String> {
    let value = opts.value.as_deref().ok_or("--value is required")?;
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("cannot clone socket: {e}"))?,
    );
    let mut writer = stream;
    let read_response = |reader: &mut BufReader<TcpStream>| -> Result<Response, String> {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read from {addr}: {e}"))?;
        if line.is_empty() {
            return Err(format!("{addr} closed the connection"));
        }
        Response::parse(&line).map_err(|e| format!("bad response from {addr}: {e}"))
    };
    let (version, sa, records, p) = match read_response(&mut reader)? {
        Response::Hello {
            version,
            sa,
            records,
            p,
            ..
        } => (version, sa, records, p),
        // A server at its connection cap refuses with one structured line
        // before any banner — surface the code and its retry hint.
        Response::Error { code, message } => {
            return Err(format!("server refused ({code}): {message}"));
        }
        other => {
            return Err(format!(
                "{addr} did not send a HELLO banner (got `{}`)",
                other.encode()
            ));
        }
    };
    if version != rp_engine::PROTOCOL_VERSION {
        return Err(format!(
            "{addr} speaks rp/{version}, this client speaks rp/{}; upgrade one side",
            rp_engine::PROTOCOL_VERSION
        ));
    }
    eprintln!("connected to {addr} (rp/{version}, {records} records, sa = {sa})");
    let mut conditions: Vec<(String, String)> = opts.conditions.clone();
    conditions.push((sa, value.to_string()));
    let request = Request::Query(WireQuery::new(conditions.clone()));
    writeln!(writer, "{}", request.encode()).map_err(|e| format!("write to {addr}: {e}"))?;
    let response = read_response(&mut reader)?;
    // Best-effort farewell; the answer is already in hand.
    let _ = writeln!(writer, "quit");
    match response {
        Response::Answer(answer) => {
            print_answer(&answer, p, "server");
            // --raw is a purely client-side comparison; it works the same
            // against a remote server as against a local artifact, and
            // like the local mode it is skipped on empty support.
            if answer.support == 0 {
                return Ok(());
            }
            if let Some(raw_path) = opts.raw.as_deref() {
                let borrowed: Vec<(&str, &str)> = conditions
                    .iter()
                    .map(|(c, v)| (c.as_str(), v.as_str()))
                    .collect();
                match true_answer(&load(raw_path)?, &borrowed) {
                    Ok(truth) => println!("(true answer on {raw_path}: {truth})"),
                    Err(msg) => println!("(no true answer on {raw_path}: {msg})"),
                }
            }
            Ok(())
        }
        Response::Error { code, message } => Err(format!("server refused ({code}): {message}")),
        other => Err(format!("unexpected response: {}", other.encode())),
    }
}

/// Counts raw rows matching every `(column, value)` condition by resolving
/// the value strings against the raw schema. Generalized values ("a|b")
/// will not resolve there — the caller reports that instead of failing.
fn true_answer(raw: &Table, conditions: &[(&str, &str)]) -> Result<u64, String> {
    let schema = raw.schema();
    let mut resolved = Vec::with_capacity(conditions.len());
    for &(col, value) in conditions {
        let attr = schema.attr_id(col).map_err(|e| e.to_string())?;
        let code = schema
            .attribute(attr)
            .dictionary()
            .code(value)
            .ok_or_else(|| {
                format!("value `{value}` not in raw column `{col}` (generalized label?)")
            })?;
        resolved.push((attr, Term::Value(code)));
    }
    Ok(Pattern::new(resolved).count(raw))
}

fn cmd_serve(opts: &Options) -> Result<(), String> {
    let publication = load_publication(opts)?;
    // The line protocol frames names and values as whitespace-separated
    // tokens; a non-token SA name even breaks the HELLO banner. Serve
    // anyway (other columns stay queryable) but say so up front.
    for attr in 0..publication.schema().arity() {
        let name = publication.schema().attribute(attr).name();
        if !rp_engine::protocol::is_token(name) {
            eprintln!(
                "warning: column `{name}` is not a protocol token (whitespace/`;`/`=`); \
                 it cannot be {} over the wire",
                if attr == publication.sa() {
                    "served — HELLO and info lines will not parse"
                } else {
                    "queried"
                }
            );
        }
    }
    let service = QueryService::from_publication(
        &publication,
        ServiceConfig {
            cache_entries: opts.cache,
        },
    );
    eprintln!(
        "serving {} records in {} groups (sa = {}, p = {}, cache = {} entries); \
         one `count COL=VALUE ... {}=VALUE` query per line, `quit` to stop",
        service.engine().records(),
        service.engine().groups(),
        publication.sa_name(),
        publication.p(),
        opts.cache,
        publication.sa_name()
    );
    if let Some(addr) = opts.listen.as_deref() {
        let server = Server::bind(
            addr,
            Arc::new(service),
            ServerConfig {
                max_conns: opts.max_conns,
            },
        )
        .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
        let bound = server
            .local_addr()
            .map_err(|e| format!("cannot resolve listen address: {e}"))?;
        eprintln!(
            "listening on {bound} (max {} concurrent sessions); \
             connect with `rpctl query --connect {bound} ...`",
            opts.max_conns
        );
        server.run().map_err(|e| format!("serve loop: {e}"))?;
    } else {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let stats =
            serve(&service, stdin.lock(), stdout.lock()).map_err(|e| format!("serve loop: {e}"))?;
        eprintln!(
            "served {} requests ({} answered, {} errors, {} cache hits)",
            stats.requests, stats.answered, stats.errors, stats.cache_hits
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(opts) = parse(&args) else {
        return usage();
    };
    let result = match opts.command.as_str() {
        "audit" => cmd_audit(&opts),
        "publish" => cmd_publish(&opts),
        "query" => cmd_query(&opts),
        "serve" => cmd_serve(&opts),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
