//! `repro` — regenerates every table and figure of *Reconstruction
//! Privacy: Enabling Statistical Learning* (EDBT 2015).
//!
//! ```text
//! repro all                 # everything, paper-scale
//! repro table1|table2|table4|table5
//! repro figure1|figure2|figure3|figure4|figure5
//! repro --quick <target>    # reduced scale (CI-friendly)
//! ```

use rp_experiments::config::{defaults, PreparedDataset};
use rp_experiments::error::{self, ErrorProtocol};
use rp_experiments::violation;
use rp_experiments::{ablation, figure1, learning, table1, table2, tables45};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] <all|table1|table2|table4|table5|figure1|figure2|figure3|figure4|figure5|ablation|learning>"
    );
    std::process::exit(2);
}

/// Scale knobs: the paper protocol or a reduced CI-friendly variant.
#[derive(Clone, Copy)]
struct Scale {
    adult_rows: usize,
    census_sizes: &'static [usize],
    census_default: usize,
    pool_size: usize,
    runs: usize,
}

const PAPER: Scale = Scale {
    adult_rows: rp_datagen::adult::ADULT_ROWS,
    census_sizes: &defaults::CENSUS_SIZES,
    census_default: 300_000,
    pool_size: defaults::POOL_SIZE,
    runs: defaults::RUNS,
};

const QUICK: Scale = Scale {
    adult_rows: 10_000,
    census_sizes: &[50_000, 100_000],
    census_default: 50_000,
    pool_size: 500,
    runs: 3,
};

fn adult(scale: Scale) -> PreparedDataset {
    if scale.adult_rows == rp_datagen::adult::ADULT_ROWS {
        PreparedDataset::adult()
    } else {
        PreparedDataset::adult_small(scale.adult_rows)
    }
}

fn protocol(scale: Scale) -> ErrorProtocol {
    ErrorProtocol {
        pool_size: scale.pool_size,
        runs: scale.runs,
        ..ErrorProtocol::default()
    }
}

fn run_table1(scale: Scale) {
    let table = rp_datagen::adult::generate(rp_datagen::AdultConfig {
        rows: scale.adult_rows,
        ..rp_datagen::AdultConfig::default()
    });
    let result = table1::run(&table, &[], scale.runs.max(10), 0xED87_2015);
    print!("{}", table1::render(&result));
}

fn run_table2() {
    print!("{}", table2::render(&table2::run()));
}

fn run_table4(scale: Scale) {
    let d = adult(scale);
    print!("{}", tables45::render(&tables45::run(&d)));
}

fn run_table5(scale: Scale) {
    let d = PreparedDataset::census(scale.census_default);
    print!("{}", tables45::render(&tables45::run(&d)));
}

fn run_figure1() {
    for panel in figure1::run() {
        print!("{}", figure1::render(&panel));
        println!();
    }
}

fn run_violation(d: &PreparedDataset, figure: &str) {
    let sweeps = violation::run_all(d);
    let labels = ["p", "lambda", "delta"];
    for (s, label) in sweeps.iter().zip(labels) {
        println!("--- {figure} vs {label} ---");
        print!("{}", violation::render(s, label));
        println!();
    }
}

fn run_error(d: &PreparedDataset, figure: &str, scale: Scale) {
    let sweeps = error::run_all(d, protocol(scale));
    let labels = ["p", "lambda", "delta"];
    for (s, label) in sweeps.iter().zip(labels) {
        println!("--- {figure} vs {label} ---");
        print!("{}", error::render(s, label));
        println!();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut target: Option<String> = None;
    for a in args {
        match a.as_str() {
            "--quick" => quick = true,
            "--paper" => quick = false,
            _ if target.is_none() => target = Some(a),
            _ => usage(),
        }
    }
    let scale = if quick { QUICK } else { PAPER };
    let target = target.unwrap_or_else(|| "all".to_string());
    let known = [
        "all", "table1", "table2", "table4", "table5", "figure1", "figure2", "figure3", "figure4",
        "figure5", "ablation", "learning",
    ];
    if !known.contains(&target.as_str()) {
        usage();
    }

    let wants = |t: &str| target == "all" || target == t;

    if wants("table1") {
        run_table1(scale);
        println!();
    }
    if wants("table2") {
        run_table2();
        println!();
    }
    if wants("table4") {
        run_table4(scale);
        println!();
    }
    if wants("table5") {
        run_table5(scale);
        println!();
    }
    if wants("figure1") {
        run_figure1();
    }
    if wants("figure2") || wants("figure3") {
        let d = adult(scale);
        if wants("figure2") {
            run_violation(&d, "Figure 2 (ADULT)");
        }
        if wants("figure3") {
            run_error(&d, "Figure 3 (ADULT)", scale);
        }
    }
    if wants("figure4") {
        let d = PreparedDataset::census(scale.census_default);
        run_violation(&d, "Figure 4 (CENSUS)");
        println!("--- Figure 4 vs |D| ---");
        print!(
            "{}",
            violation::render(&violation::census_size_sweep(scale.census_sizes), "|D|")
        );
        println!();
    }
    if wants("ablation") {
        use rp_core::privacy::PrivacyParams;
        let params = PrivacyParams::new(defaults::LAMBDA, defaults::DELTA);
        println!("--- Extension: enforcement-strategy ablation (ADULT) ---");
        let d = adult(scale);
        let result = ablation::run(&d, defaults::P, params, 1.0, protocol(scale));
        print!("{}", ablation::render(&result));
        println!();
        println!("--- Extension: enforcement-strategy ablation (CENSUS) ---");
        let d = PreparedDataset::census(scale.census_default);
        // p = 0.9 so the reduced CENSUS actually has violations to enforce.
        let result = ablation::run(&d, 0.9, params, 1.0, protocol(scale));
        print!("{}", ablation::render(&result));
        println!();
    }
    if wants("learning") {
        println!("--- Extension: statistical learning from the publication (ADULT) ---");
        let train = adult(scale);
        let test = rp_datagen::adult::generate(rp_datagen::AdultConfig {
            rows: (scale.adult_rows / 3).max(2_800),
            seed: 0xBEEF_BEEF,
        });
        let result = learning::run(&train, &test, defaults::P, 1.0, 7);
        print!("{}", learning::render(&result));
        println!();
    }
    if wants("figure5") {
        let d = PreparedDataset::census(scale.census_default);
        run_error(&d, "Figure 5 (CENSUS)", scale);
        println!("--- Figure 5 vs |D| ---");
        print!(
            "{}",
            error::render(
                &error::census_size_sweep(scale.census_sizes, protocol(scale)),
                "|D|"
            )
        );
        println!();
    }
}
