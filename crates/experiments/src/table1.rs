//! Table 1: disclosure of the Example-1 rule through differentially
//! private answers on ADULT.
//!
//! The rule {Prof-school, Prof-specialty, White, Male} → >50K has
//! confidence 83.83% (ans1 = 501, ans2 = 420). The experiment answers the
//! two queries through the Laplace mechanism at ε ∈ {0.01, 0.1, 0.5}
//! (Δ = 2, so b ∈ {200, 20, 4}), 10 trials each, and reports the mean/SE
//! of `Conf′` and of the per-query relative errors.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_datagen::adult;
use rp_dp::attack::{AttackOutcome, RatioAttack};
use rp_dp::mechanism::{LaplaceMechanism, Sensitivity};
use rp_table::{CountQuery, Table};

/// One ε column of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Column {
    /// Privacy parameter ε.
    pub epsilon: f64,
    /// Laplace scale `b = Δ/ε`.
    pub scale: f64,
    /// Attack outcome (Conf′ and relative errors with SEs).
    pub outcome: AttackOutcome,
    /// The Corollary-2 disclosure indicator `2(b/x)²`.
    pub indicator: f64,
}

/// The complete Table 1 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// True confidence of the rule (0.8383 in the paper).
    pub true_confidence: f64,
    /// One column per ε setting.
    pub columns: Vec<Table1Column>,
}

/// Builds the Example-1 refined query against the ADULT schema.
pub fn example1_query(table: &Table) -> CountQuery {
    let schema = table.schema();
    let code = |attr: usize, value: &str| {
        schema
            .attribute(attr)
            .dictionary()
            .code(value)
            .expect("ADULT dictionary value")
    };
    CountQuery::new(
        vec![
            (
                adult::attr::EDUCATION,
                code(adult::attr::EDUCATION, "Prof-school"),
            ),
            (
                adult::attr::OCCUPATION,
                code(adult::attr::OCCUPATION, "Prof-specialty"),
            ),
            (adult::attr::RACE, code(adult::attr::RACE, "White")),
            (adult::attr::GENDER, code(adult::attr::GENDER, "Male")),
        ],
        adult::attr::INCOME,
        code(adult::attr::INCOME, ">50K"),
    )
    .expect("valid count query")
}

/// Runs the Table-1 experiment.
///
/// `epsilons` defaults to the paper's {0.01, 0.1, 0.5} when empty.
pub fn run(table: &Table, epsilons: &[f64], trials: usize, seed: u64) -> Table1 {
    let epsilons: Vec<f64> = if epsilons.is_empty() {
        vec![0.01, 0.1, 0.5]
    } else {
        epsilons.to_vec()
    };
    let attack = RatioAttack::new(example1_query(table));
    let (x, y) = attack.true_answers(table);
    let mut rng = StdRng::seed_from_u64(seed);
    let columns = epsilons
        .iter()
        .map(|&epsilon| {
            let mechanism = LaplaceMechanism::new(epsilon, Sensitivity::count_query_batch(2));
            let outcome = attack.run(table, &mechanism, trials, &mut rng);
            Table1Column {
                epsilon,
                scale: mechanism.scale(),
                indicator: attack.disclosure_indicator(table, mechanism.scale()),
                outcome,
            }
        })
        .collect();
    Table1 {
        true_confidence: y as f64 / x as f64,
        columns,
    }
}

/// Renders the table in the paper's row layout.
pub fn render(t: &Table1) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1: {{Prof-school, Prof-specialty, White, Male}} -> >50K  (Conf = {:.4})",
        t.true_confidence
    );
    let _ = write!(out, "{:<22}", "");
    for c in &t.columns {
        let _ = write!(out, "eps={:<5} (b={:<4})        ", c.epsilon, c.scale);
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:<22}", "");
    for _ in &t.columns {
        let _ = write!(out, "{:<12} {:<12} ", "Mean", "SE");
    }
    let _ = writeln!(out);
    type RowGetter = Box<dyn Fn(&Table1Column) -> (f64, f64)>;
    let rows: [(&str, RowGetter); 3] = [
        (
            "Conf'",
            Box::new(|c| (c.outcome.confidence.mean, c.outcome.confidence.se)),
        ),
        (
            "|ans1 - ans1'|/ans1",
            Box::new(|c| {
                (
                    c.outcome.base_relative_error.mean,
                    c.outcome.base_relative_error.se,
                )
            }),
        ),
        (
            "|ans2 - ans2'|/ans2",
            Box::new(|c| {
                (
                    c.outcome.refined_relative_error.mean,
                    c.outcome.refined_relative_error.se,
                )
            }),
        ),
    ];
    for (label, get) in rows {
        let _ = write!(out, "{label:<22}");
        for c in &t.columns {
            let (mean, se) = get(c);
            let _ = write!(out, "{mean:<12.6} {se:<12.6} ");
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:<22}", "2(b/x)^2 indicator");
    for c in &t.columns {
        let _ = write!(out, "{:<25.6} ", c.indicator);
    }
    let _ = writeln!(out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_datagen::adult::{AdultConfig, EXAMPLE1_BASE_COUNT, EXAMPLE1_HIGH_COUNT};

    fn small_adult() -> Table {
        rp_datagen::adult::generate(AdultConfig {
            rows: 10_000,
            ..AdultConfig::default()
        })
    }

    #[test]
    fn example1_query_hits_the_embedded_cell() {
        let t = small_adult();
        let q = example1_query(&t);
        let (support, ans) = q.answer_with_support(&t);
        assert_eq!(support, EXAMPLE1_BASE_COUNT);
        assert_eq!(ans, EXAMPLE1_HIGH_COUNT);
    }

    #[test]
    fn low_noise_column_discloses_high_noise_does_not() {
        let t = small_adult();
        let result = run(&t, &[], 10, 42);
        assert!((result.true_confidence - 0.8383).abs() < 1e-3);
        assert_eq!(result.columns.len(), 3);
        // ε = 0.5 (b = 4): Conf′ tracks Conf closely.
        let tight = &result.columns[2];
        assert!(
            (tight.outcome.confidence.mean - result.true_confidence).abs() < 0.05,
            "Conf' = {} should track Conf",
            tight.outcome.confidence.mean
        );
        // ε = 0.01 (b = 200): query answers are useless.
        let loose = &result.columns[0];
        assert!(loose.outcome.base_relative_error.mean > 0.1);
        // Indicators match Table 2's b/x analysis: 2(200/501)² ≈ 0.3187.
        assert!((loose.indicator - 2.0 * (200.0f64 / 501.0).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn render_contains_all_rows() {
        let t = small_adult();
        let result = run(&t, &[0.5], 5, 7);
        let text = render(&result);
        assert!(text.contains("Conf'"));
        assert!(text.contains("|ans1 - ans1'|/ans1"));
        assert!(text.contains("|ans2 - ans2'|/ans2"));
        assert!(text.contains("eps=0.5"));
    }

    #[test]
    fn deterministic_under_seed() {
        let t = small_adult();
        assert_eq!(run(&t, &[0.1], 10, 3), run(&t, &[0.1], 10, 3));
    }
}
