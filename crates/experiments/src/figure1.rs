//! Figure 1: the maximum private group size `sg` (Equation 10) as a
//! function of the maximum SA frequency `f`, for several retention
//! probabilities.
//!
//! Panel (a) uses the ADULT setting `m = 2` (so `f >= 0.5`); panel (b) the
//! CENSUS setting `m = 50` (`f` from 0.1). Both use the default
//! λ = δ = 0.3.

use rp_core::privacy::{max_group_size, PrivacyParams};

/// One curve: `sg` sampled along a frequency grid for a fixed `p`.
#[derive(Debug, Clone, PartialEq)]
pub struct SgCurve {
    /// Retention probability of this curve.
    pub p: f64,
    /// `(f, sg)` samples.
    pub points: Vec<(f64, f64)>,
}

/// One panel (data set setting) of Figure 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure1Panel {
    /// Panel label.
    pub label: String,
    /// SA domain size `m`.
    pub m: usize,
    /// One curve per retention probability.
    pub curves: Vec<SgCurve>,
}

/// Computes a panel: `sg` over `f ∈ [f_min, f_max]` (inclusive, `steps`
/// samples) for each `p`.
///
/// # Panics
///
/// Panics if the frequency range is invalid or `steps < 2`.
pub fn panel(
    label: &str,
    m: usize,
    f_min: f64,
    f_max: f64,
    steps: usize,
    ps: &[f64],
    params: PrivacyParams,
) -> Figure1Panel {
    assert!(steps >= 2, "need at least two grid points");
    assert!(
        0.0 < f_min && f_min < f_max && f_max <= 1.0,
        "invalid frequency range [{f_min}, {f_max}]"
    );
    let curves = ps
        .iter()
        .map(|&p| {
            let points = (0..steps)
                .map(|i| {
                    let f = f_min + (f_max - f_min) * i as f64 / (steps - 1) as f64;
                    (f, max_group_size(params, p, m, f))
                })
                .collect();
            SgCurve { p, points }
        })
        .collect();
    Figure1Panel {
        label: label.to_string(),
        m,
        curves,
    }
}

/// The paper's two panels at default λ = δ = 0.3 and p ∈ {0.3, 0.5, 0.7}.
pub fn run() -> Vec<Figure1Panel> {
    let params = PrivacyParams::new(0.3, 0.3);
    let ps = [0.3, 0.5, 0.7];
    vec![
        panel("(a) ADULT (m = 2)", 2, 0.5, 0.9, 9, &ps, params),
        panel("(b) CENSUS (m = 50)", 50, 0.1, 0.9, 9, &ps, params),
    ]
}

/// Renders a panel as an aligned series table.
pub fn render(panel: &Figure1Panel) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 1{}: sg vs f  (lambda = delta = 0.3)",
        panel.label
    );
    let _ = write!(out, "{:<8}", "f");
    for c in &panel.curves {
        let _ = write!(out, "p={:<10}", c.p);
    }
    let _ = writeln!(out);
    let steps = panel.curves[0].points.len();
    for i in 0..steps {
        let f = panel.curves[0].points[i].0;
        let _ = write!(out, "{f:<8.2}");
        for c in &panel.curves {
            let _ = write!(out, "{:<12.1}", c.points[i].1);
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_decrease_in_f() {
        for panel in run() {
            for curve in &panel.curves {
                for w in curve.points.windows(2) {
                    assert!(
                        w[0].1 >= w[1].1,
                        "sg must fall as f grows: {w:?} (panel {})",
                        panel.label
                    );
                }
            }
        }
    }

    #[test]
    fn sg_boosts_at_small_f_on_census_panel() {
        let panels = run();
        let census = &panels[1];
        let first = census.curves[0].points.first().unwrap().1;
        let last = census.curves[0].points.last().unwrap().1;
        // sg ∝ (fp + (1−p)/m)/(f²): at p = 0.3, m = 50 the f = 0.1 / f =
        // 0.9 ratio is ≈ 12.5 — an order of magnitude, as Figure 1(b)
        // shows.
        assert!(
            first > 10.0 * last,
            "Figure 1(b): sg at f = 0.1 ({first}) should dwarf sg at 0.9 ({last})"
        );
    }

    #[test]
    fn adult_panel_range_starts_at_half() {
        let panels = run();
        assert!((panels[0].curves[0].points[0].0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn render_has_header_and_rows() {
        let panels = run();
        let text = render(&panels[0]);
        assert!(text.contains("sg vs f"));
        assert!(text.contains("p=0.3"));
        assert!(text.lines().count() >= 11);
    }

    #[test]
    #[should_panic(expected = "invalid frequency range")]
    fn bad_range_rejected() {
        panel("x", 2, 0.9, 0.5, 5, &[0.5], PrivacyParams::new(0.3, 0.3));
    }
}
