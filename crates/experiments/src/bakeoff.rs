//! Head-to-head utility bake-off: SPS data perturbation vs the
//! calibrated-binomial DP baseline, on the same table and query pool.
//!
//! The paper's core argument is that *data* perturbation (publish
//! perturbed records, reconstruct with the MLE) preserves more statistical
//! utility than *output* perturbation at comparable protection. This
//! module makes that claim operational: it publishes one table twice —
//!
//! * **SPS side** — the full `rp_engine::Publisher` pipeline (personal
//!   grouping, the (λ, δ) check, SPS enforcement) answered through a
//!   [`QueryEngine`] with the `est = |S*|·F′` estimator and its 95% CI;
//! * **DP side** — a [`BinomialHistogram`]: the full contingency table
//!   with per-cell centered `Binomial(N, p)` noise, `N` calibrated to a
//!   target `(ε, δ)` by Theorem 1 of arXiv 1805.10559, answered by
//!   summing noisy cells with the matching normal-approximation CI —
//!
//! and runs one deterministic conjunctive query pool (every single-NA
//! condition × SA value, plus the SA marginals) against both, scoring
//! each answer against the ground truth of the *raw* table. The report
//! carries per-query rows (truth, both estimates, both CI widths) and
//! per-mechanism aggregates: mean bias, mean |error|, RMSE, mean relative
//! error and mean CI width.
//!
//! `rpctl bakeoff` is a thin shell over [`run`] + [`render`].

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rp_dp::BinomialHistogram;
use rp_engine::{Publisher, QueryEngine};
use rp_table::{CountQuery, Table};

/// Tuning for one bake-off run: the SPS publication parameters on one
/// side, the binomial-DP calibration target on the other.
#[derive(Debug, Clone, PartialEq)]
pub struct BakeoffConfig {
    /// SPS retention probability `p`.
    pub p: f64,
    /// Privacy parameter λ (reconstruction-confidence gain bound).
    pub lambda: f64,
    /// Privacy parameter δ (probability bound of the (λ, δ) criterion).
    pub delta: f64,
    /// Seed for both the SPS publication and the DP release.
    pub seed: u64,
    /// DP target ε for the binomial calibration.
    pub dp_epsilon: f64,
    /// DP failure budget δ for the binomial calibration (distinct from
    /// the reconstruction-privacy δ above).
    pub dp_delta: f64,
    /// Binomial success probability `p` (½ gives symmetric noise).
    pub dp_p: f64,
    /// Cap on the query pool size (0 = unlimited).
    pub max_queries: usize,
}

impl Default for BakeoffConfig {
    fn default() -> Self {
        Self {
            p: rp_engine::publisher::DEFAULT_P,
            lambda: rp_engine::publisher::DEFAULT_LAMBDA,
            delta: rp_engine::publisher::DEFAULT_DELTA,
            seed: rp_engine::publisher::DEFAULT_SEED,
            dp_epsilon: 1.0,
            dp_delta: 1e-6,
            dp_p: 0.5,
            max_queries: 0,
        }
    }
}

/// One mechanism's answer to one pool query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointUtility {
    /// The mechanism's count estimate.
    pub estimate: f64,
    /// Width of the 95% confidence interval around the estimate
    /// (`None` when the mechanism cannot produce one — e.g. SPS on an
    /// empty support).
    pub ci_width: Option<f64>,
}

/// One pool query scored against both mechanisms.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryUtility {
    /// Human-readable query label, e.g. `Job=eng Disease=flu`.
    pub label: String,
    /// Number of conjunctive conditions (SA condition included).
    pub dimensions: usize,
    /// Exact answer on the raw table.
    pub truth: f64,
    /// The SPS/MLE answer.
    pub sps: PointUtility,
    /// The binomial-DP answer.
    pub dp: PointUtility,
}

/// Per-mechanism aggregate utility over the whole pool.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MechanismUtility {
    /// Mean signed error (estimate − truth).
    pub bias: f64,
    /// Mean absolute error.
    pub mean_abs_error: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Mean of |error| / max(truth, 1).
    pub mean_rel_error: f64,
    /// Mean 95% CI width over the queries that produced one.
    pub mean_ci_width: f64,
}

impl MechanismUtility {
    fn from_points<'a, I: Iterator<Item = (&'a PointUtility, f64)>>(points: I) -> Self {
        let (mut n, mut bias, mut abs, mut sq, mut rel) = (0usize, 0.0, 0.0, 0.0, 0.0);
        let (mut ci_n, mut ci) = (0usize, 0.0);
        for (point, truth) in points {
            let err = point.estimate - truth;
            n += 1;
            bias += err;
            abs += err.abs();
            sq += err * err;
            rel += err.abs() / truth.max(1.0);
            if let Some(width) = point.ci_width {
                ci_n += 1;
                ci += width;
            }
        }
        let n = n.max(1) as f64;
        Self {
            bias: bias / n,
            mean_abs_error: abs / n,
            rmse: (sq / n).sqrt(),
            mean_rel_error: rel / n,
            mean_ci_width: ci / ci_n.max(1) as f64,
        }
    }
}

/// The full bake-off result.
#[derive(Debug, Clone, PartialEq)]
pub struct BakeoffReport {
    /// Every pool query with both answers.
    pub per_query: Vec<QueryUtility>,
    /// SPS aggregates.
    pub sps: MechanismUtility,
    /// Binomial-DP aggregates.
    pub dp: MechanismUtility,
    /// Records in the input table.
    pub records: u64,
    /// Records the SPS release published.
    pub sps_published: u64,
    /// The calibrated binomial trial count `N`.
    pub dp_trials: u64,
    /// The ε the calibration achieved (≤ the configured target).
    pub dp_epsilon_achieved: f64,
    /// Cells in the DP contingency release (the calibration dimension).
    pub dp_cells: usize,
    /// The configuration the run used.
    pub config: BakeoffConfig,
}

/// Publishes `table` under both mechanisms and scores the deterministic
/// query pool. `sa` is the sensitive attribute's index.
///
/// # Errors
///
/// Returns a message when the SPS publication fails (e.g. an out-of-range
/// `sa`) — structural histogram errors panic like
/// [`BinomialHistogram::release`] does.
pub fn run(table: &Table, sa: usize, config: &BakeoffConfig) -> Result<BakeoffReport, String> {
    let publication = Publisher::new(table.clone())
        .sa(sa)
        .privacy(config.lambda, config.delta)
        .retention(config.p)
        .seed(config.seed)
        .publish()
        .map_err(|e| e.to_string())?;
    let engine = QueryEngine::new(&publication);

    // The DP release covers every attribute, so any conjunctive query the
    // pool (or a later consumer) asks is answerable on both sides.
    let attrs: Vec<usize> = (0..table.schema().arity()).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let histogram = BinomialHistogram::release(
        &mut rng,
        table,
        &attrs,
        config.dp_epsilon,
        config.dp_delta,
        config.dp_p,
    );

    let mut per_query = Vec::new();
    'pool: for query in query_pool(table, sa) {
        if config.max_queries > 0 && per_query.len() >= config.max_queries {
            break 'pool;
        }
        let truth = query.answer(table) as f64;
        let answer = engine.answer(&query).map_err(|e| e.to_string())?;
        let sps = PointUtility {
            estimate: answer.estimate,
            ci_width: answer.ci.map(|ci| answer.support as f64 * (ci.hi - ci.lo)),
        };
        let (noisy, summed) = histogram.answer_detailed(&query);
        let dp = PointUtility {
            estimate: noisy,
            // Normal approximation on a sum of `summed` binomial cells.
            ci_width: Some(2.0 * 1.96 * histogram.answer_variance(summed).sqrt()),
        };
        per_query.push(QueryUtility {
            label: label(table, sa, &query),
            dimensions: query.na_pattern().terms().len() + 1,
            truth,
            sps,
            dp,
        });
    }

    let sps = MechanismUtility::from_points(per_query.iter().map(|q| (&q.sps, q.truth)));
    let dp = MechanismUtility::from_points(per_query.iter().map(|q| (&q.dp, q.truth)));
    Ok(BakeoffReport {
        per_query,
        sps,
        dp,
        records: table.rows() as u64,
        sps_published: publication.stats().output_records,
        dp_trials: histogram.mechanism().trials(),
        dp_epsilon_achieved: histogram.mechanism().epsilon(),
        dp_cells: histogram.cells(),
        config: config.clone(),
    })
}

/// The deterministic pool: the SA marginals (`SA = v` for every SA value),
/// then every `NA = u ∧ SA = v` single-condition conjunction, in schema
/// order. Queries cannot fail to build: attributes are distinct by
/// construction and codes are enumerated from the schema.
fn query_pool(table: &Table, sa: usize) -> Vec<CountQuery> {
    let schema = table.schema();
    let sa_domain = schema.attribute(sa).domain_size() as u32;
    let mut pool = Vec::new();
    for sa_value in 0..sa_domain {
        pool.push(CountQuery::new(vec![], sa, sa_value).expect("marginal query is well-formed"));
    }
    for attr in (0..schema.arity()).filter(|&a| a != sa) {
        for code in 0..schema.attribute(attr).domain_size() as u32 {
            for sa_value in 0..sa_domain {
                pool.push(
                    CountQuery::new(vec![(attr, code)], sa, sa_value)
                        .expect("single-condition query is well-formed"),
                );
            }
        }
    }
    pool
}

/// `Attr=value ... SA=value` — the label a `count` protocol line would use.
fn label(table: &Table, sa: usize, query: &CountQuery) -> String {
    let schema = table.schema();
    let mut parts = Vec::new();
    for &(attr, term) in query.na_pattern().terms() {
        if let rp_table::Term::Value(code) = term {
            parts.push(format!(
                "{}={}",
                schema.attribute(attr).name(),
                schema
                    .attribute(attr)
                    .dictionary()
                    .value(code)
                    .expect("pool codes are enumerated from the domain")
            ));
        }
    }
    parts.push(format!(
        "{}={}",
        schema.attribute(sa).name(),
        schema
            .attribute(sa)
            .dictionary()
            .value(query.sa_value())
            .expect("pool codes are enumerated from the domain")
    ));
    parts.join(" ")
}

/// Renders the report: run header, per-query table, aggregate table.
/// `detail_rows` caps the per-query section (0 = all rows).
pub fn render(report: &BakeoffReport, detail_rows: usize) -> String {
    let mut out = String::new();
    let c = &report.config;
    let _ = writeln!(
        out,
        "bake-off: {} records; SPS(p={}, lambda={}, delta={}) published {} records; \
         binomial-DP(eps<={}, delta={}, p={}) achieved eps={:.4} with N={} trials \
         over {} cells; seed={}",
        report.records,
        c.p,
        c.lambda,
        c.delta,
        report.sps_published,
        c.dp_epsilon,
        c.dp_delta,
        c.dp_p,
        report.dp_epsilon_achieved,
        report.dp_trials,
        report.dp_cells,
        c.seed,
    );
    let shown = if detail_rows == 0 {
        report.per_query.len()
    } else {
        detail_rows.min(report.per_query.len())
    };
    let _ = writeln!(
        out,
        "{:<32}{:>10}{:>12}{:>10}{:>12}{:>10}",
        "query", "truth", "sps-est", "sps-ci", "dp-est", "dp-ci"
    );
    for q in &report.per_query[..shown] {
        let fmt_ci = |w: Option<f64>| match w {
            Some(w) => format!("{w:.1}"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<32}{:>10.0}{:>12.1}{:>10}{:>12.1}{:>10}",
            q.label,
            q.truth,
            q.sps.estimate,
            fmt_ci(q.sps.ci_width),
            q.dp.estimate,
            fmt_ci(q.dp.ci_width),
        );
    }
    if shown < report.per_query.len() {
        let _ = writeln!(out, "... ({} more queries)", report.per_query.len() - shown);
    }
    let _ = writeln!(
        out,
        "{:<14}{:>10}{:>12}{:>12}{:>12}{:>12}",
        "mechanism", "bias", "mean|err|", "rmse", "rel-err", "ci-width"
    );
    for (name, m) in [("sps", &report.sps), ("binomial-dp", &report.dp)] {
        let _ = writeln!(
            out,
            "{:<14}{:>10.2}{:>12.2}{:>12.2}{:>12.4}{:>12.1}",
            name, m.bias, m.mean_abs_error, m.rmse, m.mean_rel_error, m.mean_ci_width
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_table::{Attribute, Schema, TableBuilder};

    /// 6 × 200-record groups: small enough to stay UP-degenerate under
    /// SPS, so the SPS side answers exactly on group-aligned queries.
    fn fixture() -> Table {
        let schema = Schema::new(vec![
            Attribute::new("Job", ["eng", "doc", "law"]),
            Attribute::new("City", ["ny", "sf"]),
            Attribute::new("Disease", ["flu", "none"]),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..1200u32 {
            b.push_codes(&[i % 3, (i / 3) % 2, (i / 6) % 2]).unwrap();
        }
        b.build()
    }

    #[test]
    fn report_covers_the_full_pool() {
        let table = fixture();
        let report = run(&table, 2, &BakeoffConfig::default()).unwrap();
        // 2 marginals + (3 Job + 2 City values) × 2 SA values.
        assert_eq!(report.per_query.len(), 12);
        assert_eq!(report.records, 1200);
        assert!(report.dp_trials > 0);
        assert!(report.dp_epsilon_achieved <= 1.0);
        assert_eq!(report.dp_cells, 12);
        assert!(report.per_query.iter().all(|q| q.dp.ci_width.is_some()));
    }

    #[test]
    fn max_queries_caps_the_pool() {
        let table = fixture();
        let config = BakeoffConfig {
            max_queries: 5,
            ..BakeoffConfig::default()
        };
        let report = run(&table, 2, &config).unwrap();
        assert_eq!(report.per_query.len(), 5);
    }

    #[test]
    fn run_is_deterministic_in_the_seed() {
        let table = fixture();
        let config = BakeoffConfig::default();
        assert_eq!(
            run(&table, 2, &config).unwrap(),
            run(&table, 2, &config).unwrap()
        );
    }

    #[test]
    fn sps_beats_dp_on_big_aggregates_here() {
        // The paper's central claim on this fixture: 200-record groups
        // stay UP-degenerate, so SPS answers group-aligned counts near-
        // exactly, while the calibrated binomial at ε ≤ 1 must carry
        // hundreds of counts worth of noise per cell.
        let table = fixture();
        let report = run(&table, 2, &BakeoffConfig::default()).unwrap();
        assert!(
            report.sps.rmse < report.dp.rmse,
            "sps rmse {} vs dp rmse {}",
            report.sps.rmse,
            report.dp.rmse
        );
    }

    #[test]
    fn truths_are_exact_table_counts() {
        let table = fixture();
        let report = run(&table, 2, &BakeoffConfig::default()).unwrap();
        // SA marginals: 600 each; Job=eng ∧ Disease=flu: 200.
        assert_eq!(report.per_query[0].truth, 600.0);
        assert_eq!(report.per_query[1].truth, 600.0);
        let job_flu = report
            .per_query
            .iter()
            .find(|q| q.label == "Job=eng Disease=flu")
            .unwrap();
        assert_eq!(job_flu.truth, 200.0);
        assert_eq!(job_flu.dimensions, 2);
    }

    #[test]
    fn render_mentions_both_mechanisms() {
        let table = fixture();
        let report = run(&table, 2, &BakeoffConfig::default()).unwrap();
        let text = render(&report, 4);
        assert!(text.contains("binomial-dp"), "{text}");
        assert!(text.contains("sps"), "{text}");
        assert!(text.contains("more queries"), "{text}");
    }
}
