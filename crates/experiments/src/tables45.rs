//! Tables 4 and 5: impact of the χ² NA-aggregation on ADULT and CENSUS.
//!
//! For each public attribute the tables report the domain size before and
//! after merging, plus the number of personal groups `|G|` and the average
//! group size `|D|/|G|` before and after.

use crate::config::PreparedDataset;
use rp_core::groups::{PersonalGroups, SaSpec};

/// Per-attribute domain sizes before/after aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainImpact {
    /// Attribute name.
    pub name: String,
    /// Domain size before merging.
    pub before: usize,
    /// Domain size after merging.
    pub after: usize,
}

/// The full aggregation-impact report (one of Tables 4/5).
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationImpact {
    /// Data set name.
    pub dataset: String,
    /// Per-public-attribute domain impact.
    pub domains: Vec<DomainImpact>,
    /// Number of personal groups before aggregation.
    pub groups_before: usize,
    /// Number of personal groups after aggregation.
    pub groups_after: usize,
    /// Total records.
    pub records: usize,
}

impl AggregationImpact {
    /// Average group size before aggregation.
    pub fn avg_before(&self) -> f64 {
        self.records as f64 / self.groups_before as f64
    }

    /// Average group size after aggregation.
    pub fn avg_after(&self) -> f64 {
        self.records as f64 / self.groups_after as f64
    }
}

/// Measures the aggregation impact for a prepared data set.
pub fn run(dataset: &PreparedDataset) -> AggregationImpact {
    let raw_spec = SaSpec::new(&dataset.raw, dataset.sa);
    let raw_groups = PersonalGroups::build(&dataset.raw, raw_spec.clone());
    let domains = raw_spec
        .na()
        .iter()
        .map(|&a| DomainImpact {
            name: dataset.raw.schema().attribute(a).name().to_string(),
            before: dataset.raw.schema().attribute(a).domain_size(),
            after: dataset.generalized.schema().attribute(a).domain_size(),
        })
        .collect();
    AggregationImpact {
        dataset: dataset.name.clone(),
        domains,
        groups_before: raw_groups.len(),
        groups_after: dataset.groups.len(),
        records: dataset.raw.rows(),
    }
}

/// Renders the report in the paper's layout.
pub fn render(impact: &AggregationImpact) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 4/5: NA aggregation impact on {} (|D| = {})",
        impact.dataset, impact.records
    );
    let _ = write!(out, "{:<22}", "");
    for d in &impact.domains {
        let _ = write!(out, "{:<14}", d.name);
    }
    let _ = writeln!(out, "{:<10}{:<10}", "|G|", "|D|/|G|");
    let _ = write!(out, "{:<22}", "Before Aggregation");
    for d in &impact.domains {
        let _ = write!(out, "{:<14}", d.before);
    }
    let _ = writeln!(
        out,
        "{:<10}{:<10.0}",
        impact.groups_before,
        impact.avg_before()
    );
    let _ = write!(out, "{:<22}", "After Aggregation");
    for d in &impact.domains {
        let _ = write!(out, "{:<14}", d.after);
    }
    let _ = writeln!(
        out,
        "{:<10}{:<10.0}",
        impact.groups_after,
        impact.avg_after()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_adult_impact_shape() {
        let d = PreparedDataset::adult_small(10_000);
        let impact = run(&d);
        assert_eq!(impact.domains.len(), 4);
        assert_eq!(impact.domains[0].before, 16);
        assert!(impact.domains[0].after <= 16);
        assert_eq!(impact.groups_before, 2240, "coverage seed fills every cell");
        assert!(impact.groups_after <= impact.groups_before);
        assert!(impact.avg_after() >= impact.avg_before());
    }

    #[test]
    fn render_lists_attributes() {
        let d = PreparedDataset::adult_small(10_000);
        let text = render(&run(&d));
        for name in ["Education", "Occupation", "Race", "Gender"] {
            assert!(text.contains(name), "missing {name}");
        }
        assert!(text.contains("Before Aggregation"));
        assert!(text.contains("After Aggregation"));
    }
}
