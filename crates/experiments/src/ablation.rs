//! Extension experiment (beyond the paper's figures): utility of the four
//! publishing strategies at a common privacy demand.
//!
//! The paper *argues* that the alternatives to SPS are worse but never
//! measures them. This experiment does, on the same data set and query
//! pool:
//!
//! * **SPS** — the paper's algorithm (sampling only where needed);
//! * **Reduce-p** — plain uniform perturbation with the retention lowered
//!   until *every* group passes the criterion (Section 5's "not preferred"
//!   option; infeasible on large data);
//! * **Suppress** — plain perturbation with violating groups dropped;
//! * **DP histogram** — the output-perturbation philosophy: an ε-DP
//!   contingency release answering the same queries (no reconstruction
//!   privacy at all; shown for calibration);
//! * **Anatomy (l = 2)** — the posterior/prior-criteria philosophy the
//!   introduction contrasts with: l-diverse bucketization (no
//!   reconstruction-privacy guarantee either; a different trade-off).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::alternatives::{max_private_retention, suppress_and_perturb};
use rp_core::privacy::PrivacyParams;
use rp_core::sps::{sps_histograms, up_histograms, SpsConfig};
use rp_dp::histogram::DpHistogram;
use rp_engine::QueryEngine;
use rp_stats::summary::{relative_error, OnlineStats};

use crate::config::PreparedDataset;
use crate::error::{build_pool, ErrorProtocol};

/// A per-run producer of perturbed per-group histograms.
type HistogramProducer = Box<dyn FnMut(&mut StdRng) -> Vec<Vec<u64>>>;

/// Result of the strategy comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationResult {
    /// Data set name.
    pub dataset: String,
    /// The `(λ, δ)` demand all data-perturbation strategies must meet.
    pub params: PrivacyParams,
    /// Retention used by SPS / Suppress.
    pub p: f64,
    /// Mean relative error of SPS.
    pub sps: f64,
    /// Mean relative error of UP at the reduced retention, with the
    /// retention found; `None` when no retention in `(0.01, p)` makes the
    /// whole table private.
    pub reduce_p: Option<(f64, f64)>,
    /// Mean relative error of the suppression strategy.
    pub suppress: f64,
    /// Fraction of records suppressed by that strategy.
    pub suppressed_fraction: f64,
    /// Mean relative error of the ε-DP histogram release and the ε used.
    pub dp_histogram: (f64, f64),
    /// Mean relative error of Anatomy at `l = 2`; `None` when the table is
    /// not l-eligible (some SA value holds more than `|D|/2` records).
    pub anatomy: Option<f64>,
    /// Baseline: plain UP at `p` (violates the criterion).
    pub up_unsafe: f64,
}

/// Runs the comparison. `epsilon` parameterizes the DP-histogram release.
pub fn run(
    dataset: &PreparedDataset,
    p: f64,
    params: PrivacyParams,
    epsilon: f64,
    protocol: ErrorProtocol,
) -> AblationResult {
    let (pool, prepared) = build_pool(dataset, protocol);
    let groups = &dataset.groups;
    let schema = dataset.generalized.schema();
    let mut rng = StdRng::seed_from_u64(protocol.seed ^ 0x0B1A);

    // Evaluate a per-run histogram producer against the pool through a
    // QueryEngine, reusing the prepared match index across every strategy.
    let evaluate = |mut make_hists: HistogramProducer, answer_p: f64, rng: &mut StdRng| {
        let mut err = OnlineStats::new();
        for _ in 0..protocol.runs {
            let engine = QueryEngine::from_histograms(groups, make_hists(rng), schema, answer_p);
            err.push(
                engine
                    .mean_relative_error(&pool, &prepared)
                    .expect("prepared index matches the pool"),
            );
        }
        err.mean().unwrap_or(f64::NAN)
    };

    // SPS at the nominal retention.
    let groups_ref = groups.clone();
    let sps_err = evaluate(
        Box::new(move |rng| sps_histograms(rng, &groups_ref, SpsConfig { p, params })),
        p,
        &mut rng,
    );

    // Plain UP at the nominal retention (the unsafe baseline).
    let groups_ref = groups.clone();
    let up_err = evaluate(
        Box::new(move |rng| up_histograms(rng, &groups_ref, p)),
        p,
        &mut rng,
    );

    // Reduce-p: find the largest compliant retention below the nominal.
    let reduce_p = max_private_retention(groups, params, 0.01, p, 1e-3).map(|p_safe| {
        let groups_ref = groups.clone();
        let err = evaluate(
            Box::new(move |rng| up_histograms(rng, &groups_ref, p_safe)),
            p_safe,
            &mut rng,
        );
        (p_safe, err)
    });

    // Suppression.
    let groups_ref = groups.clone();
    let suppress_err = evaluate(
        Box::new(move |rng| suppress_and_perturb(rng, &groups_ref, p, params).histograms),
        p,
        &mut rng,
    );
    let suppressed_fraction = {
        let mut one_rng = StdRng::seed_from_u64(protocol.seed);
        let out = suppress_and_perturb(&mut one_rng, groups, p, params);
        out.suppressed_records as f64 / groups.total_rows() as f64
    };

    // DP histogram over the generalized NA attributes plus SA.
    let mut attrs: Vec<usize> = groups.spec().na().to_vec();
    attrs.push(groups.spec().sa());
    let mut dp_err = OnlineStats::new();
    for _ in 0..protocol.runs {
        let release = DpHistogram::release(&mut rng, &dataset.generalized, &attrs, epsilon);
        for pq in &pool.queries {
            dp_err.push(relative_error(release.answer(&pq.query), pq.answer as f64));
        }
    }

    // Anatomy at l = 2 over the generalized table (deterministic given the
    // table, so one evaluation suffices).
    let anatomy = rp_anonymize::AnatomizedTable::build(&dataset.generalized, groups.spec().sa(), 2)
        .ok()
        .map(|anatomized| {
            let mut err = OnlineStats::new();
            for pq in &pool.queries {
                err.push(relative_error(
                    anatomized.estimate(&dataset.generalized, &pq.query),
                    pq.answer as f64,
                ));
            }
            err.mean().unwrap_or(f64::NAN)
        });

    AblationResult {
        dataset: dataset.name.clone(),
        params,
        p,
        sps: sps_err,
        reduce_p,
        suppress: suppress_err,
        suppressed_fraction,
        dp_histogram: (dp_err.mean().unwrap_or(f64::NAN), epsilon),
        anatomy,
        up_unsafe: up_err,
    }
}

/// Renders the comparison.
pub fn render(r: &AblationResult) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Enforcement-strategy ablation on {} (p = {}, lambda = {}, delta = {})",
        r.dataset,
        r.p,
        r.params.lambda(),
        r.params.delta()
    );
    let _ = writeln!(out, "{:<34}{:<14}notes", "strategy", "rel. error");
    let _ = writeln!(
        out,
        "{:<34}{:<14.4}violates the criterion",
        "UP (no enforcement)", r.up_unsafe
    );
    let _ = writeln!(out, "{:<34}{:<14.4}compliant", "SPS (paper)", r.sps);
    match r.reduce_p {
        Some((p_safe, err)) => {
            let _ = writeln!(
                out,
                "{:<34}{:<14.4}compliant at p = {:.3}",
                "Reduce-p (global noise)", err, p_safe
            );
        }
        None => {
            let _ = writeln!(
                out,
                "{:<34}{:<14}no retention in (0.01, p] is compliant",
                "Reduce-p (global noise)", "-"
            );
        }
    }
    let _ = writeln!(
        out,
        "{:<34}{:<14.4}compliant, drops {:.1}% of records",
        "Suppress violating groups",
        r.suppress,
        100.0 * r.suppressed_fraction
    );
    let _ = writeln!(
        out,
        "{:<34}{:<14.4}eps = {} (no reconstruction privacy)",
        "DP histogram (output pert.)", r.dp_histogram.0, r.dp_histogram.1
    );
    match r.anatomy {
        Some(err) => {
            let _ = writeln!(
                out,
                "{:<34}{:<14.4}l-diverse, not reconstruction-private",
                "Anatomy l=2 (posterior crit.)", err
            );
        }
        None => {
            let _ = writeln!(
                out,
                "{:<34}{:<14}table not l-eligible",
                "Anatomy l=2 (posterior crit.)", "-"
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn protocol() -> ErrorProtocol {
        ErrorProtocol {
            pool_size: 120,
            runs: 2,
            seed: 77,
        }
    }

    #[test]
    fn ablation_runs_and_orders_strategies_sanely() {
        let d = PreparedDataset::adult_small(15_000);
        let params = PrivacyParams::new(0.3, 0.3);
        let r = run(&d, 0.5, params, 1.0, protocol());
        // All errors are finite and positive.
        assert!(r.sps.is_finite() && r.sps > 0.0);
        assert!(r.up_unsafe.is_finite() && r.up_unsafe > 0.0);
        assert!(r.suppress.is_finite());
        // Enforcement costs something relative to the unsafe baseline.
        assert!(
            r.sps >= r.up_unsafe * 0.8,
            "sps {} vs up {}",
            r.sps,
            r.up_unsafe
        );
        // Suppression erases whole subpopulations, so on a heavily
        // violating table its error is large.
        assert!(r.suppressed_fraction > 0.5);
        assert!(
            r.suppress > r.sps,
            "suppress {} should lose to SPS {}",
            r.suppress,
            r.sps
        );
    }

    #[test]
    fn reduce_p_absent_when_table_unfixable() {
        let d = PreparedDataset::adult_small(15_000);
        // Near-impossible demand: δ → 1 shrinks sg to ~0, so every
        // non-trivial group violates at every retention.
        let params = PrivacyParams::new(0.3, 0.999);
        let r = run(&d, 0.5, params, 1.0, protocol());
        assert!(r.reduce_p.is_none());
    }

    #[test]
    fn render_mentions_all_strategies() {
        let d = PreparedDataset::adult_small(12_000);
        let r = run(&d, 0.5, PrivacyParams::new(0.3, 0.3), 1.0, protocol());
        let text = render(&r);
        for needle in [
            "SPS",
            "Reduce-p",
            "Suppress",
            "DP histogram",
            "UP",
            "Anatomy",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
