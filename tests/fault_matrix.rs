//! The fault matrix: deterministic fault injection across every durable
//! path of the storage stack — WAL appends, group commit fsyncs, spill
//! page write-backs, snapshot replacement — proving the failure
//! contract end to end:
//!
//! * every faulted run either **fails loudly** (a structured error with a
//!   message) or recovers to exactly the durable prefix, byte-identical
//!   to a fault-free oracle over the same events;
//! * a failed fsync is **never** followed by a successful ack — the
//!   stream poisons and refuses writes from that point on (fsyncgate);
//! * fault schedules are replayable: the same `(seed, period)` produces
//!   the same outcome transcript, run after run;
//! * a degraded catalog tenant keeps answering queries while the other
//!   tenants' transcripts stay byte-identical to a no-fault run, and the
//!   catalog `reload` verb recovers the degraded tenant from disk.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use rp_repro::engine::{
    serve_catalog, Catalog, FaultSchedule, Publication, Publisher, QueryService, ServiceConfig,
    StreamConfig, StreamError, StreamPublisher,
};
use rp_repro::table::{Attribute, Schema, TableBuilder};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rp-fault-matrix-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(format!("{}.spill", path.display()));
    path
}

/// A small base release over a 3-attribute schema (SA = Disease).
fn base_publication() -> Publication {
    let schema = Schema::new(vec![
        Attribute::new("Job", ["eng", "doc", "law"]),
        Attribute::new("City", ["rome", "oslo"]),
        Attribute::new("Disease", ["flu", "hiv", "none"]),
    ]);
    let mut b = TableBuilder::new(schema);
    for i in 0..600u32 {
        b.push_codes(&[i % 3, (i / 3) % 2, (i / 6) % 3]).unwrap();
    }
    Publisher::new(b.build()).sa(2).seed(23).publish().unwrap()
}

fn save_bytes(p: &Publication) -> Vec<u8> {
    let mut bytes = Vec::new();
    p.save(&mut bytes).unwrap();
    bytes
}

/// Deterministic skewed records: group (1,1) runs hot, so the sweep also
/// exercises re-publication events riding the same WAL.
fn record(i: u32) -> Vec<u32> {
    if i % 3 != 2 {
        vec![1, 1, u32::from(i.is_multiple_of(10))]
    } else {
        vec![i % 3, (i / 3) % 2, (i / 6) % 3]
    }
}

/// End offset of every complete WAL event line plus the header boundary
/// (both derived purely from the grammar: events are `i`/`r` lines).
fn event_boundaries(bytes: &[u8]) -> (usize, Vec<usize>) {
    let mut offset = 0;
    let mut header_end = None;
    let mut ends = Vec::new();
    for line in bytes.split_inclusive(|&b| b == b'\n') {
        let is_event = line.starts_with(b"i\t") || line.starts_with(b"r\t");
        offset += line.len();
        if is_event {
            header_end.get_or_insert(offset - line.len());
            if line.ends_with(b"\n") {
                ends.push(offset);
            }
        }
    }
    (header_end.unwrap_or(bytes.len()), ends)
}

/// The fault-free oracle: the snapshot bytes after each insert call,
/// keyed by WAL cursor. Any faulted run recovering to cursor `s` must
/// land on exactly `oracle[s]` (or, when `s` splits an insert from its
/// republish event, on a deterministic pure function of the prefix).
fn build_oracle(records: u32, config: StreamConfig) -> HashMap<u64, Vec<u8>> {
    let wal = tmp("oracle.rpwal");
    let mut live = StreamPublisher::open(base_publication(), &wal, config).unwrap();
    let mut oracle = HashMap::new();
    oracle.insert(0, save_bytes(&live.snapshot().unwrap()));
    for i in 0..records {
        live.insert_codes(&record(i)).unwrap();
        oracle.insert(live.wal_seq(), save_bytes(&live.snapshot().unwrap()));
    }
    live.flush().unwrap();
    oracle
}

/// Recovered state must match the oracle at its cursor; a cursor between
/// an insert and its republish has no oracle entry, and then recovery
/// must at least be a deterministic pure function of the WAL prefix.
fn assert_matches_oracle(
    oracle: &HashMap<u64, Vec<u8>>,
    wal: &Path,
    config: StreamConfig,
    label: &str,
) {
    let mut recovered = StreamPublisher::open(base_publication(), wal, config).unwrap();
    let seq = recovered.wal_seq();
    let bytes = save_bytes(&recovered.snapshot().unwrap());
    drop(recovered);
    match oracle.get(&seq) {
        Some(expected) => assert_eq!(&bytes, expected, "{label}: diverged from the oracle"),
        None => {
            let mut again = StreamPublisher::replay(base_publication(), wal, config).unwrap();
            assert_eq!(
                save_bytes(&again.snapshot().unwrap()),
                bytes,
                "{label}: recovery must be deterministic"
            );
        }
    }
}

const SWEEP_RECORDS: u32 = 60;

/// Drives one faulted run and checks the per-run contract: no ack ever
/// follows a failed fsync, errors carry messages, and the reported
/// durable cursor never exceeds what a fault-free reopen finds on disk.
/// Returns the outcome transcript (the replayability witness).
fn drive_sweep_run(wal: &Path, schedule: Arc<FaultSchedule>, config: StreamConfig) -> String {
    let mut log = String::new();
    let mut stream =
        match StreamPublisher::open_with(base_publication(), wal, config, schedule.clone()) {
            Ok(stream) => stream,
            Err(e) => {
                assert!(!e.to_string().is_empty(), "errors carry a message");
                return format!("open-failed({e});");
            }
        };
    let mut poisoned = false;
    for i in 0..SWEEP_RECORDS {
        match stream.insert_codes(&record(i)) {
            Ok(_) => {
                assert!(!poisoned, "insert {i}: acked after a failed fsync");
                log.push_str("ok;");
            }
            Err(e) => {
                assert!(!e.to_string().is_empty(), "errors carry a message");
                if matches!(e, StreamError::Degraded { .. }) {
                    poisoned = true;
                    assert!(stream.degraded().is_some(), "degraded error without poison");
                }
                log.push_str("err;");
            }
        }
        if poisoned {
            // Once poisoned, always poisoned: the next op must refuse too.
            assert!(
                matches!(stream.flush(), Err(StreamError::Degraded { .. })),
                "insert {i}: a poisoned stream accepted a flush"
            );
        }
    }
    match stream.flush() {
        Ok(_) => assert!(!poisoned, "flush acked after a failed fsync"),
        Err(e) => assert!(!e.to_string().is_empty(), "errors carry a message"),
    }
    let durable = stream.durable_seq();
    log.push_str(&format!("durable={durable}"));
    drop(stream);

    // Fault-free recovery sees at least the durable prefix (the process
    // did not crash, so flushed-but-unsynced bytes may also survive).
    let recovered = StreamPublisher::open(base_publication(), wal, config).unwrap();
    assert!(
        recovered.wal_seq() >= durable,
        "disk lost acked events: wal_seq {} < durable {durable}",
        recovered.wal_seq()
    );
    drop(recovered);
    log
}

#[test]
fn seeded_fault_sweep_fails_loudly_or_recovers_the_durable_prefix() {
    // Group commit every 4 events: commit-time fsyncs interleave with
    // appends, so sync faults land mid-stream, not only at flush.
    let config = StreamConfig {
        commit_batch: 4,
        ..StreamConfig::default()
    };
    let oracle = build_oracle(SWEEP_RECORDS, config);

    for seed in 0..6u64 {
        for period in [3u64, 5, 9] {
            // Replayability: the same (seed, period) schedule produces
            // the same outcome transcript on a fresh run.
            let transcripts: Vec<String> = (0..2)
                .map(|run| {
                    let wal = tmp(&format!("sweep-{seed}-{period}-{run}.rpwal"));
                    let schedule = Arc::new(FaultSchedule::sampled(seed, period));
                    let log = drive_sweep_run(&wal, schedule, config);
                    if !log.starts_with("open-failed") {
                        assert_matches_oracle(
                            &oracle,
                            &wal,
                            config,
                            &format!("seed {seed} period {period}"),
                        );
                    }
                    log
                })
                .collect();
            assert_eq!(
                transcripts[0], transcripts[1],
                "seed {seed} period {period}: the schedule must replay identically"
            );
        }
    }
}

#[test]
fn simulated_crash_at_the_durable_boundary_recovers_exactly_durable_seq() {
    let config = StreamConfig {
        commit_batch: 4,
        ..StreamConfig::default()
    };
    let oracle = build_oracle(SWEEP_RECORDS, config);

    // Fail the 7th fsync: the creation consumes two, so the poison lands
    // a few commit batches into the stream.
    let wal = tmp("crash-boundary.rpwal");
    let schedule = Arc::new(FaultSchedule::fsync_at(7));
    let mut stream =
        StreamPublisher::open_with(base_publication(), &wal, config, schedule).unwrap();
    let mut degraded_at = None;
    for i in 0..SWEEP_RECORDS {
        if let Err(e) = stream.insert_codes(&record(i)) {
            assert!(matches!(e, StreamError::Degraded { .. }), "{e}");
            degraded_at = Some(i);
            break;
        }
    }
    let durable = stream.durable_seq();
    assert!(degraded_at.is_some(), "the scripted fsync fault must land");
    drop(stream);

    // Crash: everything past the last good fsync is lost. Cut the log at
    // the durable boundary; recovery must land on exactly durable_seq,
    // byte-identical to the fault-free oracle at that prefix.
    let full = std::fs::read(&wal).unwrap();
    let (header_end, event_ends) = event_boundaries(&full);
    let cut = match usize::try_from(durable).unwrap() {
        0 => header_end,
        n => event_ends[n - 1],
    };
    std::fs::write(&wal, &full[..cut]).unwrap();
    let recovered = StreamPublisher::open(base_publication(), &wal, config).unwrap();
    assert_eq!(
        recovered.wal_seq(),
        durable,
        "recovery must land on durable_seq"
    );
    drop(recovered);
    assert_matches_oracle(&oracle, &wal, config, "crash at the durable boundary");
}

/// A base release with many distinct public groups: cycling inserts
/// across 128 groups under `max_resident: 1` overflow the spill store's
/// buffer pool, so dirty pages genuinely reach the disk (and its fault
/// policy) instead of idling in frames.
fn wide_publication() -> Publication {
    let ids: Vec<String> = (0..128u32).map(|i| format!("u{i}")).collect();
    let schema = Schema::new(vec![
        Attribute::new("Id", ids.iter().map(String::as_str)),
        Attribute::new("Disease", ["flu", "hiv", "none"]),
    ]);
    let mut b = TableBuilder::new(schema);
    for i in 0..640u32 {
        b.push_codes(&[i % 128, i % 3]).unwrap();
    }
    Publisher::new(b.build()).sa(1).seed(29).publish().unwrap()
}

#[test]
fn spill_faults_are_absorbed_or_loud_and_never_corrupt_recovery() {
    // A resident bound of 1 pushes every cold group through the spill
    // file continuously — the write-back path sees heavy fault traffic.
    let config = StreamConfig {
        max_resident: 1,
        ..StreamConfig::default()
    };
    let records = 300u32;
    let wide_record = |i: u32| vec![i % 128, i % 3];

    // Fault-free oracle bytes for the full run.
    let oracle_wal = tmp("spill-oracle.rpwal");
    let mut oracle = StreamPublisher::open(wide_publication(), &oracle_wal, config).unwrap();
    for i in 0..records {
        oracle.insert_codes(&wide_record(i)).unwrap();
    }
    oracle.flush().unwrap();
    let expected = save_bytes(&oracle.snapshot().unwrap());
    drop(oracle);

    // Sampled transient faults: the bounded retry either absorbs them
    // (and then the run is byte-identical to fault-free) or the run
    // fails loudly — and recovery stays a pure function of (base, WAL).
    let mut absorbed = 0u32;
    for seed in 0..4u64 {
        let wal = tmp(&format!("spill-sweep-{seed}.rpwal"));
        let schedule = Arc::new(FaultSchedule::sampled(seed, 47));
        let run = StreamPublisher::open_with(wide_publication(), &wal, config, schedule.clone());
        let outcome = run.map(|mut stream| {
            for i in 0..records {
                if let Err(e) = stream.insert_codes(&wide_record(i)) {
                    assert!(!e.to_string().is_empty(), "errors carry a message");
                    return Err(e);
                }
            }
            stream.flush()?;
            Ok(save_bytes(&stream.snapshot().unwrap()))
        });
        match outcome {
            Ok(Ok(bytes)) => {
                assert_eq!(
                    bytes, expected,
                    "seed {seed}: an absorbed fault changed published bytes"
                );
                absorbed += u32::from(schedule.injected() > 0);
            }
            Ok(Err(_)) | Err(_) => {
                // Loud failure. The half-written spill page must not
                // reach recovered state: reopen fault-free and compare
                // against replaying the same WAL prefix.
                let mut a = StreamPublisher::open(wide_publication(), &wal, config).unwrap();
                let a_bytes = save_bytes(&a.snapshot().unwrap());
                drop(a);
                let mut b = StreamPublisher::replay(wide_publication(), &wal, config).unwrap();
                assert_eq!(
                    save_bytes(&b.snapshot().unwrap()),
                    a_bytes,
                    "seed {seed}: recovery read corrupt spill state"
                );
            }
        }
    }
    assert!(
        absorbed > 0,
        "at least one sweep must inject a fault the retry absorbs"
    );

    // Persistent faults (every op fails): the run must refuse loudly —
    // replaying the oracle WAL spills and every write-back burns its
    // retries — and a fault-free reopen of the intact WAL still
    // reproduces the oracle bytes: the spill file is working state,
    // never durable.
    let everything_fails = Arc::new(FaultSchedule::sampled(1, 1));
    let loud =
        match StreamPublisher::open_with(wide_publication(), &oracle_wal, config, everything_fails)
        {
            Err(e) => e.to_string(),
            Ok(mut stream) => {
                let mut first_error = None;
                for i in 0..records {
                    if let Err(e) = stream.insert_codes(&wide_record(i)) {
                        first_error = Some(e.to_string());
                        break;
                    }
                }
                // The WAL appends are buffered, so at the latest the flush's
                // failed fsync surfaces the schedule.
                first_error.unwrap_or_else(|| {
                    stream
                        .flush()
                        .expect_err("persistent faults must surface by flush time")
                        .to_string()
                })
            }
        };
    assert!(!loud.is_empty(), "errors carry a message");
    let mut recovered = StreamPublisher::open(wide_publication(), &oracle_wal, config).unwrap();
    assert_eq!(
        save_bytes(&recovered.snapshot().unwrap()),
        expected,
        "persistent spill faults leaked into recovered state"
    );
}

#[test]
fn snapshot_faults_leave_the_target_untouched_or_land_oracle_bytes() {
    let config = StreamConfig::default();
    let wal = tmp("snap-fault.rpwal");
    let snap = tmp("snap-fault.rppub");

    // Build durable state fault-free and publish a first snapshot.
    let mut live = StreamPublisher::open(base_publication(), &wal, config).unwrap();
    for i in 0..40u32 {
        live.insert_codes(&record(i)).unwrap();
    }
    live.flush().unwrap();
    live.save_snapshot(&snap).unwrap();
    let old = std::fs::read(&snap).unwrap();
    drop(live);

    // Reopen behind a schedule that fails *every* operation: the retry
    // burns its attempts and save_snapshot must fail loudly — with the
    // published snapshot untouched and no temp litter left behind.
    let everything_fails = Arc::new(FaultSchedule::sampled(7, 1));
    let mut faulted =
        StreamPublisher::open_with(base_publication(), &wal, config, everything_fails).unwrap();
    let err = faulted
        .save_snapshot(&snap)
        .expect_err("a persistently faulted snapshot must fail");
    assert!(!err.to_string().is_empty(), "errors carry a message");
    assert_eq!(
        std::fs::read(&snap).unwrap(),
        old,
        "a failed snapshot touched the published artifact"
    );
    assert!(
        !Path::new(&format!("{}.tmp", snap.display())).exists(),
        "a failed snapshot left its temp sibling behind"
    );
    drop(faulted);

    // A single scripted write fault is absorbed by the retry (each
    // attempt writes a fresh temp file): the save succeeds and the bytes
    // equal the fault-free oracle's.
    let mut reference = StreamPublisher::open(base_publication(), &wal, config).unwrap();
    let oracle_snap = tmp("snap-fault-oracle.rppub");
    reference.save_snapshot(&oracle_snap).unwrap();
    let expected = std::fs::read(&oracle_snap).unwrap();
    drop(reference);
    let one_fault = Arc::new(FaultSchedule::write_at(1, rp_repro::engine::FaultKind::Eio));
    let mut retried =
        StreamPublisher::open_with(base_publication(), &wal, config, one_fault).unwrap();
    retried.save_snapshot(&snap).unwrap();
    assert_eq!(
        std::fs::read(&snap).unwrap(),
        expected,
        "an absorbed snapshot fault changed the artifact bytes"
    );
}

// ---------------------------------------------------------------------------
// Catalog round: a degraded tenant must not bleed into its neighbours.
// ---------------------------------------------------------------------------

/// A static tenant over a differently-shaped table, so its answers are
/// observably its own.
fn alpha_service() -> Arc<QueryService> {
    let schema = Schema::new(vec![
        Attribute::new("Job", ["eng", "doc", "law"]),
        Attribute::new("City", ["rome", "oslo"]),
        Attribute::new("Disease", ["flu", "none"]),
    ]);
    let mut b = TableBuilder::new(schema);
    for i in 0..1800u32 {
        b.push_codes(&[i % 3, (i / 3) % 2, (i / 6) % 2]).unwrap();
    }
    let publication = Publisher::new(b.build()).sa(2).seed(41).publish().unwrap();
    Arc::new(QueryService::from_publication(
        &publication,
        ServiceConfig::default(),
    ))
}

/// Builds the two-tenant catalog: `alpha` static (the default) and
/// `live` streaming from `artifact` + `wal`, with the source recorded so
/// the `reload` verb can rebuild it. When `fsync_at > 0` the live
/// tenant's service is swapped for one opened behind that scripted
/// schedule — exactly what `rpctl serve --fault-fsync-at` does.
fn fixture_catalog(artifact: &Path, wal: &Path, fsync_at: u64) -> Catalog {
    let config = ServiceConfig::default();
    let catalog = Catalog::new("alpha").unwrap();
    catalog.open("alpha", alpha_service()).unwrap();
    catalog
        .open_stream_path("live", artifact, wal, StreamConfig::default(), None, config)
        .unwrap();
    if fsync_at > 0 {
        let base = Publication::load_from_path(artifact).unwrap();
        // The WAL already exists (created passthrough just above), so
        // the reopen consumes no creation syncs: the first flush-time
        // fsync is sync 1.
        let stream = StreamPublisher::open_with(
            base,
            wal,
            StreamConfig::default(),
            Arc::new(FaultSchedule::fsync_at(fsync_at)),
        )
        .unwrap();
        let service = Arc::new(QueryService::streaming(stream, None, config));
        catalog.reload("live", service).unwrap();
    }
    catalog
}

/// One stdio session against `catalog`; returns the response transcript.
fn run_session(catalog: &Catalog, script: &[&str]) -> String {
    let input = script.join("\n") + "\n";
    let mut out = Vec::new();
    serve_catalog(catalog, input.as_bytes(), &mut out).expect("in-memory serve cannot fail");
    String::from_utf8(out).unwrap()
}

/// The live tenant's degradation-and-recovery session.
const LIVE_SCRIPT: &[&str] = &[
    "insert@live Job=eng City=rome Disease=flu",
    "flush@live",
    "insert@live Job=doc City=oslo Disease=flu",
    "count@live Job=eng Disease=flu",
    "count Job=eng Disease=flu",
    "reload live",
    "insert@live Job=doc City=oslo Disease=flu",
    "flush@live",
    "quit",
];

/// The neighbour tenant's session: pure reads on the default release.
const ALPHA_SCRIPT: &[&str] = &[
    "info",
    "count Job=eng Disease=flu",
    "count City=oslo Disease=none",
    "count Job=doc Disease=flu",
    "ping",
    "quit",
];

#[test]
fn a_degraded_tenant_keeps_answering_and_neighbours_stay_byte_identical() {
    let artifact = tmp("catalog-live.rppub");
    base_publication().save_to_path(&artifact).unwrap();

    // Reference: the same catalog and the same sessions, no faults.
    let ref_wal = tmp("catalog-ref.rpwal");
    let reference = fixture_catalog(&artifact, &ref_wal, 0);
    let _ = run_session(&reference, LIVE_SCRIPT);
    let alpha_reference = run_session(&reference, ALPHA_SCRIPT);

    // Faulted: the live tenant's first flush-time fsync fails.
    let wal = tmp("catalog-fault.rpwal");
    let catalog = fixture_catalog(&artifact, &wal, 1);
    let live = run_session(&catalog, LIVE_SCRIPT);
    let lines: Vec<&str> = live.lines().skip(1).collect(); // skip the banner
    assert!(lines[0].starts_with("inserted"), "{live}");
    assert!(
        lines[1].starts_with("error code=degraded"),
        "the failed fsync must answer a degraded error: {live}"
    );
    assert!(
        lines[1].contains("durable through event 0"),
        "the degraded error must report the durable cursor: {live}"
    );
    assert!(
        lines[2].starts_with("error code=degraded"),
        "a poisoned stream must refuse further writes: {live}"
    );
    assert!(
        lines[3].starts_with("est="),
        "a degraded tenant must keep answering queries: {live}"
    );
    assert!(
        lines[4].starts_with("est="),
        "the default tenant must answer through the degradation: {live}"
    );
    assert!(
        lines[5].starts_with("reloaded"),
        "reload must recover the degraded tenant: {live}"
    );
    assert!(
        lines[6].starts_with("inserted"),
        "a recovered tenant must accept writes again: {live}"
    );
    assert!(
        lines[7].starts_with("flushed"),
        "a recovered tenant must flush durably again: {live}"
    );

    // The neighbour's transcript is byte-identical to the no-fault run.
    let alpha = run_session(&catalog, ALPHA_SCRIPT);
    assert_eq!(
        alpha, alpha_reference,
        "a degraded tenant bled into its neighbour's transcript"
    );
}
