//! Crash-torture for the storage layer: cut the durable artifacts at
//! sampled byte offsets and prove that recovery lands exactly on the
//! durable prefix — or refuses loudly — but never invents state, never
//! returns a silently wrong artifact, and never clobbers a predecessor.
//!
//! Three artifacts, three contracts:
//!
//! * **WAL** — a torn final line is discarded on open (the write that
//!   never completed) and the stream recovers to the longest complete
//!   event prefix, byte-identically to a run that only saw those events;
//!   a cut inside the header is a structured error, not a guess.
//! * **Snapshot** — replacement is atomic (temp sibling + rename), so a
//!   crashed writer leaves the *old* snapshot fully intact; a truncated
//!   artifact never loads as a shorter-but-valid one (the v2 magic is
//!   declared before the data it promises).
//! * **Spill** — explicitly *not* durable state: recovery never reads
//!   it, so arbitrary corruption (or deletion) of the spill file must
//!   not change one recovered byte.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use rp_repro::engine::{Publication, Publisher, StreamConfig, StreamPublisher};
use rp_repro::table::{Attribute, Schema, TableBuilder};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rp-stream-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(format!("{}.spill", path.display()));
    path
}

/// A small base release over a 3-attribute schema (SA = Disease).
fn base_publication() -> Publication {
    let schema = Schema::new(vec![
        Attribute::new("Job", ["eng", "doc", "law"]),
        Attribute::new("City", ["rome", "oslo"]),
        Attribute::new("Disease", ["flu", "hiv", "none"]),
    ]);
    let mut b = TableBuilder::new(schema);
    for i in 0..600u32 {
        b.push_codes(&[i % 3, (i / 3) % 2, (i / 6) % 3]).unwrap();
    }
    Publisher::new(b.build()).sa(2).seed(23).publish().unwrap()
}

fn save_bytes(p: &Publication) -> Vec<u8> {
    let mut bytes = Vec::new();
    p.save(&mut bytes).unwrap();
    bytes
}

/// Deterministic skewed records: group (1,1) hot enough to re-publish.
fn record(i: u32) -> Vec<u32> {
    if i % 3 != 2 {
        vec![1, 1, u32::from(i.is_multiple_of(10))]
    } else {
        vec![i % 3, (i / 3) % 2, (i / 6) % 3]
    }
}

/// Byte offset where the WAL's event section starts, and the end offset
/// of every complete event line (both derived purely from the grammar:
/// events are the lines tagged `i` or `r`).
fn event_boundaries(bytes: &[u8]) -> (usize, Vec<usize>) {
    let mut offset = 0;
    let mut header_end = None;
    let mut ends = Vec::new();
    for line in bytes.split_inclusive(|&b| b == b'\n') {
        let is_event = line.starts_with(b"i\t") || line.starts_with(b"r\t");
        offset += line.len();
        if is_event {
            header_end.get_or_insert(offset - line.len());
            if line.ends_with(b"\n") {
                ends.push(offset);
            }
        }
    }
    (header_end.expect("log has events"), ends)
}

#[test]
fn wal_truncation_recovers_the_durable_prefix_exactly() {
    // Reference run, snapshotting after every insert call: the oracle
    // maps each WAL cursor to the exact bytes a recovery must produce.
    let wal_ref = tmp("torture-ref.rpwal");
    let mut oracle: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut live =
        StreamPublisher::open(base_publication(), &wal_ref, StreamConfig::default()).unwrap();
    oracle.insert(0, save_bytes(&live.snapshot().unwrap()));
    for i in 0..120u32 {
        live.insert_codes(&record(i)).unwrap();
        oracle.insert(live.wal_seq(), save_bytes(&live.snapshot().unwrap()));
    }
    live.flush().unwrap();
    drop(live);
    let full = std::fs::read(&wal_ref).unwrap();
    let (header_end, event_ends) = event_boundaries(&full);

    // Sample cut points across the whole file, plus both edges of every
    // region that matters (header boundary, last byte, full length).
    let mut cuts: Vec<usize> = (0..full.len()).step_by(41).collect();
    cuts.extend([header_end - 1, header_end, full.len() - 1, full.len()]);
    for (case, &cut) in cuts.iter().enumerate() {
        let path = tmp(&format!("torture-{case}.rpwal"));
        std::fs::write(&path, &full[..cut]).unwrap();
        let result = StreamPublisher::open(base_publication(), &path, StreamConfig::default());
        let durable = event_ends.iter().filter(|&&e| e <= cut).count() as u64;
        let mut recovered = match result {
            Err(err) => {
                // Refusal is only legitimate while the header itself is
                // incomplete: past it there is always a well-defined
                // durable prefix to recover to.
                assert!(cut < header_end, "cut at byte {cut} must recover: {err}");
                assert!(!err.to_string().is_empty(), "errors carry a message");
                continue;
            }
            // An open below the header boundary can only mean the cut
            // lost nothing but the header's final newline — all content
            // present, zero events, normal recovery from here on.
            Ok(recovered) => recovered,
        };
        // The durable prefix is the complete event lines before the cut;
        // the torn tail (if any) must be discarded — including from the
        // file itself, so the next append continues a well-formed log.
        assert_eq!(recovered.wal_seq(), durable, "cut at byte {cut}");
        let boundary = event_ends
            .iter()
            .rfind(|&&e| e <= cut)
            .copied()
            .unwrap_or(header_end);
        if cut >= header_end {
            assert_eq!(
                std::fs::read(&path).unwrap(),
                &full[..boundary],
                "cut at byte {cut}: torn tail must be truncated away"
            );
        }
        let bytes = save_bytes(&recovered.snapshot().unwrap());
        match oracle.get(&durable) {
            // The cut fell on an insert-call boundary: recovery must
            // reproduce that moment of the live run byte for byte.
            Some(expected) => assert_eq!(&bytes, expected, "cut at byte {cut}"),
            // The cut split an insert from its republish event. The
            // live run never paused there, so no oracle bytes exist —
            // but recovery must still be a pure function of the prefix.
            None => {
                drop(recovered);
                std::fs::write(&path, &full[..boundary]).unwrap();
                let mut again =
                    StreamPublisher::replay(base_publication(), &path, StreamConfig::default())
                        .unwrap();
                assert_eq!(
                    save_bytes(&again.snapshot().unwrap()),
                    bytes,
                    "cut at byte {cut}: recovery must be deterministic"
                );
            }
        }
    }
}

#[test]
fn snapshot_truncation_fails_loudly_never_quietly() {
    let wal = tmp("snap-trunc.rpwal");
    let mut live =
        StreamPublisher::open(base_publication(), &wal, StreamConfig::default()).unwrap();
    for i in 0..80u32 {
        live.insert_codes(&record(i)).unwrap();
    }
    live.flush().unwrap();
    let snap = tmp("snap-trunc.rppub");
    live.save_snapshot(&snap).unwrap();
    let full = std::fs::read(&snap).unwrap();
    assert!(Publication::load_from_path(&snap).is_ok());
    let mut cuts: Vec<usize> = (0..full.len()).step_by(37).collect();
    cuts.push(full.len() - 1);
    for (case, &cut) in cuts.iter().enumerate() {
        let path = tmp(&format!("snap-trunc-{case}.rppub"));
        std::fs::write(&path, &full[..cut]).unwrap();
        // A truncated artifact must refuse to load — the v2 magic
        // promises a live section, so losing the tail cannot masquerade
        // as a complete shorter artifact. The one admissible exception:
        // a cut that only lost the final newline still carries every
        // byte of data, and then the loaded artifact must round-trip to
        // exactly the full bytes. Loud error or right answer — nothing
        // in between.
        match Publication::load_from_path(&path) {
            Err(err) => assert!(!err.to_string().is_empty(), "errors carry a message"),
            Ok(loaded) => assert_eq!(
                save_bytes(&loaded),
                full,
                "cut at byte {cut} loaded as a *different* artifact"
            ),
        }
    }
}

/// Cutting between an insert and the republish event it triggered is the
/// nastiest torn point: the pair was atomic for the live run. Recovery
/// must land exactly on the prefix (insert applied, republish not) and
/// be deterministic about it.
#[test]
fn cut_between_insert_and_its_republish_recovers_deterministically() {
    let wal = tmp("pair-cut.rpwal");
    let mut live =
        StreamPublisher::open(base_publication(), &wal, StreamConfig::default()).unwrap();
    for i in 0..3000u32 {
        live.insert_codes(&[1, 1, u32::from(i % 10 == 0)]).unwrap();
    }
    assert!(live.republished() > 0, "fixture must re-publish");
    live.flush().unwrap();
    drop(live);
    let full = std::fs::read(&wal).unwrap();
    let (_, event_ends) = event_boundaries(&full);
    // The boundary just before the first `r` line, and a cut torn
    // mid-`r`: both must recover to the same durable prefix.
    let r_start = full
        .split_inclusive(|&b| b == b'\n')
        .scan(0usize, |off, line| {
            let start = *off;
            *off += line.len();
            Some((start, line))
        })
        .find(|(_, line)| line.starts_with(b"r\t"))
        .map(|(start, _)| start)
        .expect("log has a republish event");
    let durable = event_ends.iter().filter(|&&e| e <= r_start).count() as u64;
    let mut recovered_bytes = Vec::new();
    for (case, cut) in [r_start, r_start + 2].into_iter().enumerate() {
        let path = tmp(&format!("pair-cut-{case}.rpwal"));
        std::fs::write(&path, &full[..cut]).unwrap();
        let mut recovered =
            StreamPublisher::open(base_publication(), &path, StreamConfig::default()).unwrap();
        assert_eq!(
            recovered.wal_seq(),
            durable,
            "the republish must roll back, its insert must not"
        );
        recovered_bytes.push(save_bytes(&recovered.snapshot().unwrap()));
    }
    assert_eq!(
        recovered_bytes[0], recovered_bytes[1],
        "a torn `r` line and a missing one must recover identically"
    );
}

#[test]
fn crashed_snapshot_writer_leaves_the_old_snapshot_intact() {
    let wal = tmp("snap-atomic.rpwal");
    let snap = tmp("snap-atomic.rppub");
    let mut live =
        StreamPublisher::open(base_publication(), &wal, StreamConfig::default()).unwrap();
    for i in 0..40u32 {
        live.insert_codes(&record(i)).unwrap();
    }
    live.flush().unwrap();
    live.save_snapshot(&snap).unwrap();
    let old = std::fs::read(&snap).unwrap();

    // A later snapshot attempt that dies mid-write leaves its partial
    // bytes in the temp sibling — never in the live path.
    let tmp_sibling = format!("{}.tmp", snap.display());
    std::fs::write(&tmp_sibling, &old[..old.len() / 2]).unwrap();
    assert_eq!(
        std::fs::read(&snap).unwrap(),
        old,
        "a partial write must not touch the published snapshot"
    );
    let restored = Publication::load_from_path(&snap).unwrap();
    assert_eq!(save_bytes(&restored), old);

    // The next successful snapshot atomically replaces both: the target
    // advances, the stale temp litter is gone.
    for i in 40..60u32 {
        live.insert_codes(&record(i)).unwrap();
    }
    live.flush().unwrap();
    live.save_snapshot(&snap).unwrap();
    let new = std::fs::read(&snap).unwrap();
    assert_ne!(new, old, "the snapshot must have advanced");
    assert!(
        !Path::new(&tmp_sibling).exists(),
        "a completed save cleans up the temp sibling"
    );
    assert!(Publication::load_from_path(&snap).is_ok());
}

#[test]
fn spill_corruption_cannot_reach_recovered_state() {
    // Heavy spilling: a resident bound of 1 pushes every cold group to
    // the side file continuously.
    let config = StreamConfig {
        max_resident: 1,
        ..StreamConfig::default()
    };
    let wal = tmp("spill-crash.rpwal");
    let mut live = StreamPublisher::open(base_publication(), &wal, config).unwrap();
    for i in 0..300u32 {
        live.insert_codes(&record(i)).unwrap();
    }
    live.flush().unwrap();
    let expected = save_bytes(&live.snapshot().unwrap());
    drop(live);

    // Crash. The spill file is working state, not durable state: trash
    // it completely — recovery must not read one byte of it.
    let spill = format!("{}.spill", wal.display());
    assert!(Path::new(&spill).exists(), "the run must have spilled");
    std::fs::write(&spill, b"\0garbage\0that\0parses\0as\0nothing").unwrap();
    let mut recovered = StreamPublisher::open(base_publication(), &wal, config).unwrap();
    assert_eq!(
        save_bytes(&recovered.snapshot().unwrap()),
        expected,
        "recovery must be a pure function of (base, WAL)"
    );
    // Deleting it outright is equally invisible.
    drop(recovered);
    std::fs::remove_file(&spill).unwrap();
    let mut recovered = StreamPublisher::replay(base_publication(), &wal, config).unwrap();
    assert_eq!(save_bytes(&recovered.snapshot().unwrap()), expected);
}
