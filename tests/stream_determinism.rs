//! The determinism contract, extended to streams: a streaming
//! publication's state is a pure function of `(base artifact, WAL)`.
//!
//! The property proven here (satellite of the Publication-v2 PR): for a
//! random insert sequence split across N restarts — each restart either
//! resuming from a fresh snapshot ("clean handoff") or from the previous
//! artifact plus the WAL tail ("crash recovery"), with or without a
//! bounded resident set forcing cold-group spills — the final snapshot
//! bytes and the query answers are identical to the single uninterrupted
//! run's. A clean-start replay of the full WAL lands on the same bytes
//! too.

use std::path::PathBuf;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rp_repro::engine::{
    Publication, Publisher, QueryEngine, QueryService, ServiceConfig, SessionStats, StreamConfig,
    StreamPublisher,
};
use rp_repro::table::{Attribute, CountQuery, Schema, TableBuilder};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rp-stream-determinism-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(format!("{}.spill", path.display()));
    path
}

/// A small base release over a 3-attribute schema (SA = Disease).
fn base_publication() -> Publication {
    let schema = Schema::new(vec![
        Attribute::new("Job", ["eng", "doc", "law"]),
        Attribute::new("City", ["rome", "oslo"]),
        Attribute::new("Disease", ["flu", "hiv", "none"]),
    ]);
    let mut b = TableBuilder::new(schema);
    for i in 0..600u32 {
        b.push_codes(&[i % 3, (i / 3) % 2, (i / 6) % 3]).unwrap();
    }
    Publisher::new(b.build()).sa(2).seed(23).publish().unwrap()
}

fn save_bytes(p: &Publication) -> Vec<u8> {
    let mut bytes = Vec::new();
    p.save(&mut bytes).unwrap();
    bytes
}

/// Skewed random records: one hot group draws most of the traffic so
/// re-publications genuinely fire inside the property.
fn arb_records(rng: &mut StdRng, n: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.6) {
                // The hot, skewed group: mostly one SA value.
                let sa = if rng.gen_bool(0.85) {
                    0
                } else {
                    rng.gen_range(0..3u32)
                };
                vec![0, 0, sa]
            } else {
                vec![
                    rng.gen_range(0..3u32),
                    rng.gen_range(0..2u32),
                    rng.gen_range(0..3u32),
                ]
            }
        })
        .collect()
}

/// Probe queries covering the hot group, a cold group and a wildcard.
fn probes() -> Vec<CountQuery> {
    vec![
        CountQuery::new(vec![(0, 0), (1, 0)], 2, 0).unwrap(),
        CountQuery::new(vec![(0, 2)], 2, 1).unwrap(),
        CountQuery::new(vec![], 2, 2).unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any interleaving of inserts split across N restarts — snapshot
    /// handoffs, crash recoveries, bounded-memory spilling — reproduces
    /// the single-run publication bytes and query answers exactly.
    #[test]
    fn restarts_reproduce_the_single_run_exactly(case_seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(case_seed);
        let n = rng.gen_range(60..240usize);
        let records = arb_records(&mut rng, n);

        // Reference: the uninterrupted live run.
        let wal_ref = tmp(&format!("ref-{case_seed:016x}.rpwal"));
        let mut reference =
            StreamPublisher::open(base_publication(), &wal_ref, StreamConfig::default()).unwrap();
        for r in &records {
            reference.insert_codes(r).unwrap();
        }
        reference.flush().unwrap();
        let reference_snapshot = reference.snapshot().unwrap();
        let reference_bytes = save_bytes(&reference_snapshot);

        // The restarted run: 1..4 restart points, each a snapshot
        // handoff or a crash recovery, under a bounded resident set.
        let restarts = rng.gen_range(1..=3usize);
        let mut cuts: Vec<usize> = (0..restarts).map(|_| rng.gen_range(0..=n)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let config = StreamConfig {
            max_resident: if rng.gen_bool(0.5) { 2 } else { 0 },
            // Group commit changes durability timing only, never bytes;
            // random batches let the property double as proof.
            commit_batch: if rng.gen_bool(0.5) { rng.gen_range(2..32) } else { 0 },
            ..StreamConfig::default()
        };
        let wal = tmp(&format!("split-{case_seed:016x}.rpwal"));
        // `artifact` is what a restart reopens: the base at first, then
        // whatever the previous incarnation last snapshotted (crash
        // recoveries deliberately reuse an older artifact and lean on
        // the WAL tail).
        let mut artifact = base_publication();
        let mut done = 0usize;
        for &cut in &cuts {
            let mut stream = StreamPublisher::open(artifact.clone(), &wal, config).unwrap();
            for r in &records[done..cut] {
                stream.insert_codes(r).unwrap();
            }
            stream.flush().unwrap();
            if rng.gen_bool(0.5) {
                // Clean handoff: the next incarnation resumes from a
                // fresh snapshot plus an empty tail.
                artifact = stream.snapshot().unwrap();
            }
            // Crash recovery otherwise: `artifact` stays stale and the
            // next open replays the tail from the WAL.
            done = cut;
            drop(stream);
        }
        let mut last = StreamPublisher::open(artifact, &wal, config).unwrap();
        for r in &records[done..] {
            last.insert_codes(r).unwrap();
        }
        last.flush().unwrap();
        prop_assert_eq!(
            &save_bytes(&last.snapshot().unwrap()),
            &reference_bytes,
            "restarted run diverged from the single run"
        );

        // Clean-start replay of the full WAL: same bytes again.
        let mut replayed =
            StreamPublisher::replay(base_publication(), &wal, StreamConfig::default()).unwrap();
        prop_assert_eq!(
            &save_bytes(&replayed.snapshot().unwrap()),
            &reference_bytes,
            "clean-start replay diverged from the live run"
        );

        // Query answers agree between the live view (base engine + live
        // groups) and the materialized v2 table — and therefore between
        // the single run and every restart (identical bytes).
        let service = QueryService::streaming(last, None, ServiceConfig::default());
        let batch_engine = QueryEngine::new(&reference_snapshot);
        let mut session = SessionStats::default();
        for query in probes() {
            let via_batch = batch_engine.answer(&query).unwrap();
            let line = {
                let mut s = String::from("count");
                for &(attr, code) in query.na_pattern().terms() {
                    if let rp_repro::table::Term::Value(code) = code {
                        let a = batch_engine.schema().attribute(attr);
                        s.push_str(&format!(
                            " {}={}",
                            a.name(),
                            a.dictionary().value(code).unwrap()
                        ));
                    }
                }
                let sa = batch_engine.schema().attribute(2);
                s.push_str(&format!(
                    " {}={}",
                    sa.name(),
                    sa.dictionary().value(query.sa_value()).unwrap()
                ));
                s
            };
            let response = service.handle_line(&line, &mut session).unwrap();
            let rp_repro::engine::Response::Answer(live) = response else {
                panic!("expected an answer for `{line}`, got {response:?}");
            };
            prop_assert_eq!(live.support, via_batch.support, "{}", line);
            prop_assert_eq!(live.observed, via_batch.observed, "{}", line);
            prop_assert_eq!(live.estimate, via_batch.estimate, "{}", line);
        }
    }
}

/// The WAL records re-publication events and replay applies them
/// literally: a run heavy enough to trigger SPS re-sampling still
/// replays byte-identically (deterministic per-group RNG streams).
#[test]
fn republication_heavy_stream_replays_exactly() {
    let wal = tmp("republish-heavy.rpwal");
    let mut live =
        StreamPublisher::open(base_publication(), &wal, StreamConfig::default()).unwrap();
    for i in 0..3000u32 {
        // One group, 90/10 skew: crosses sg repeatedly.
        live.insert_codes(&[1, 1, u32::from(i % 10 == 0)]).unwrap();
    }
    assert!(live.republished() > 0, "the stream must re-publish");
    live.flush().unwrap();
    let live_bytes = save_bytes(&live.snapshot().unwrap());
    drop(live);
    let mut replayed =
        StreamPublisher::replay(base_publication(), &wal, StreamConfig::default()).unwrap();
    assert_eq!(save_bytes(&replayed.snapshot().unwrap()), live_bytes);
}

/// WAL compaction absorbs events superseded by a later re-publication
/// into per-group state records; replaying the compacted log must land
/// on exactly the bytes of replaying the full log — and the compacted
/// log must remain appendable with the stream continuing byte-for-byte.
#[test]
fn compacted_replay_is_byte_identical_to_full_replay() {
    use rp_repro::engine::stream::wal;

    let wal_full = tmp("compact-full.rpwal");
    let mut live =
        StreamPublisher::open(base_publication(), &wal_full, StreamConfig::default()).unwrap();
    for i in 0..3000u32 {
        live.insert_codes(&[1, 1, u32::from(i % 10 == 0)]).unwrap();
    }
    // A mixed tail keeps several groups live past the absorption floor.
    for i in 0..300u32 {
        live.insert_codes(&[i % 3, (i / 3) % 2, (i / 6) % 3])
            .unwrap();
    }
    assert!(live.republished() > 0, "the stream must re-publish");
    live.flush().unwrap();
    let full_bytes = save_bytes(&live.snapshot().unwrap());
    drop(live);

    let wal_compact = tmp("compact-small.rpwal");
    let stats = wal::compact_wal(&wal_full, &wal_compact).unwrap();
    assert!(stats.absorbed > 0, "compaction must absorb events");
    assert!(
        stats.events_out < stats.events_in,
        "the compacted log must be shorter"
    );
    let mut replayed =
        StreamPublisher::replay(base_publication(), &wal_compact, StreamConfig::default()).unwrap();
    assert_eq!(
        save_bytes(&replayed.snapshot().unwrap()),
        full_bytes,
        "compacted replay diverged from full replay"
    );

    // Appending the same suffix to the full and the compacted log keeps
    // producing identical snapshots: compaction is transparent forward.
    for target in [&wal_full, &wal_compact] {
        let mut resumed =
            StreamPublisher::open(base_publication(), target, StreamConfig::default()).unwrap();
        for i in 0..50u32 {
            resumed.insert_codes(&[i % 3, 0, i % 3]).unwrap();
        }
        resumed.flush().unwrap();
    }
    let mut a =
        StreamPublisher::replay(base_publication(), &wal_full, StreamConfig::default()).unwrap();
    let mut b =
        StreamPublisher::replay(base_publication(), &wal_compact, StreamConfig::default()).unwrap();
    assert_eq!(
        save_bytes(&a.snapshot().unwrap()),
        save_bytes(&b.snapshot().unwrap()),
        "post-compaction appends diverged"
    );
}
