//! Integration tests for the publication API (`rp-engine`): the
//! `Publisher` → `Publication` → `QueryEngine` surface must agree exactly
//! with the legacy free-function pipeline it wraps, and the on-disk
//! artifact must round-trip byte-for-byte.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_repro::core::estimate::estimate_by_scan;
use rp_repro::core::groups::{PersonalGroups, SaSpec};
use rp_repro::core::privacy::PrivacyParams;
use rp_repro::core::sps::{sps, SpsConfig};
use rp_repro::datagen::adult::{self, AdultConfig};
use rp_repro::datagen::querypool::{QueryPool, QueryPoolConfig};
use rp_repro::engine::{Publication, Publisher, QueryEngine};
use rp_repro::experiments::config::PreparedDataset;
use rp_repro::table::Table;

const SEED: u64 = 0xA11_5EED;
const P: f64 = 0.5;

fn adult_table() -> Table {
    adult::generate(AdultConfig {
        rows: 20_000,
        seed: 33,
    })
}

fn publish(table: &Table) -> Publication {
    Publisher::new(table.clone())
        .sa(adult::attr::INCOME)
        .privacy(0.3, 0.3)
        .retention(P)
        .seed(SEED)
        .publish()
        .expect("ADULT shape supports the criterion")
}

/// The builder must be a faithful wrapper: same seed, same input ⇒ the
/// exact published table the legacy `sps()` free function produces.
#[test]
fn publisher_reproduces_the_legacy_pipeline() {
    let table = adult_table();
    let publication = publish(&table);

    let spec = SaSpec::new(&table, adult::attr::INCOME);
    let groups = PersonalGroups::build(&table, spec);
    let mut rng = StdRng::seed_from_u64(SEED);
    let legacy = sps(
        &mut rng,
        &table,
        &groups,
        SpsConfig {
            p: P,
            params: PrivacyParams::new(0.3, 0.3),
        },
    );
    assert_eq!(publication.table(), &legacy.table);
    assert_eq!(publication.stats(), legacy.stats);
}

/// Engine answers must equal the legacy one-shot `estimate_by_scan` path
/// on the same release, query by query, over a pooled Section-6 workload.
#[test]
fn engine_answers_match_one_shot_estimation_over_a_pool() {
    let dataset = PreparedDataset::adult_small(20_000);
    let publication = Publisher::new(dataset.generalized.clone())
        .sa(dataset.sa)
        .privacy(0.3, 0.3)
        .retention(P)
        .seed(SEED)
        .publish()
        .expect("generalized ADULT supports the criterion");
    let engine = QueryEngine::new(&publication);

    let mut rng = StdRng::seed_from_u64(91);
    let pool = QueryPool::generate(
        &mut rng,
        dataset.raw.schema(),
        &dataset.generalization,
        &dataset.groups,
        QueryPoolConfig {
            pool_size: 300,
            ..QueryPoolConfig::default()
        },
    );
    assert!(pool.len() >= 100, "pool too small to be meaningful");

    let prepared = engine.prepare_pool(&pool).expect("pool fits the schema");
    let answers = engine.answer_pool(&pool, &prepared).expect("index matches");
    for (pq, answer) in pool.queries.iter().zip(&answers) {
        let scan = estimate_by_scan(publication.table(), &pq.query, P);
        assert!(
            (answer.estimate - scan).abs() < 1e-9,
            "engine {} vs scan {scan} on {:?}",
            answer.estimate,
            pq.query
        );
        // Single-query path agrees with the batched path.
        let single = engine.answer(&pq.query).expect("query fits");
        assert_eq!(single, *answer);
    }
}

/// Artifact round-trip: `save ∘ load ∘ save` must be byte-identical and
/// the loaded value must answer identically to the original.
#[test]
fn artifact_round_trip_is_byte_identical() {
    let publication = publish(&adult_table());
    let mut first = Vec::new();
    publication.save(&mut first).expect("serializable");
    let restored = Publication::load(&first[..]).expect("well-formed artifact");
    assert_eq!(publication, restored);
    let mut second = Vec::new();
    restored.save(&mut second).expect("serializable");
    assert_eq!(first, second, "save/load round trip must be byte-identical");

    // The restored release answers exactly like the original.
    let engine = QueryEngine::new(&publication);
    let engine2 = QueryEngine::new(&restored);
    let query = engine
        .query_from_values(&[("Gender", "Male"), ("Income", ">50K")])
        .expect("values exist");
    assert_eq!(
        engine.answer(&query).expect("fits"),
        engine2.answer(&query).expect("fits")
    );
}

/// The artifact file path helpers work against a real filesystem.
#[test]
fn artifact_survives_disk() {
    let publication = publish(&adult_table());
    let dir = std::env::temp_dir();
    let path = dir.join(format!("rp_publication_test_{}.rppub", std::process::id()));
    publication.save_to_path(&path).expect("writable temp dir");
    let restored = Publication::load_from_path(&path).expect("readable artifact");
    std::fs::remove_file(&path).ok();
    assert_eq!(publication, restored);
}

/// Determinism contract extends to the publication API: the same seed
/// produces the same artifact bytes.
#[test]
fn publication_is_a_pure_function_of_its_seed() {
    let table = adult_table();
    let a = publish(&table);
    let b = publish(&table);
    assert_eq!(a, b);
    let mut bytes_a = Vec::new();
    let mut bytes_b = Vec::new();
    a.save(&mut bytes_a).unwrap();
    b.save(&mut bytes_b).unwrap();
    assert_eq!(bytes_a, bytes_b);
}
