//! End-to-end integration: the full publication pipeline (generate →
//! generalize → test → enforce → publish → reconstruct) spanning
//! rp-datagen, rp-core and rp-table.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::estimate::{estimate_by_scan, GroupedView};
use rp_core::groups::{PersonalGroups, SaSpec};
use rp_core::privacy::{check_groups, max_group_size, PrivacyParams};
use rp_core::sps::{sps, uniform_perturb, SpsConfig};
use rp_datagen::adult::{self, AdultConfig};
use rp_experiments::config::PreparedDataset;
use rp_stats::summary::relative_error;
use rp_table::CountQuery;

fn fixture() -> PreparedDataset {
    PreparedDataset::adult_small(15_000)
}

#[test]
fn up_violates_and_sps_sample_sizes_respect_sg() {
    let d = fixture();
    let params = PrivacyParams::new(0.3, 0.3);
    let p = 0.5;
    // The paper's first claim: plain perturbation violates reconstruction
    // privacy on (a table shaped like) real data.
    let report = check_groups(&d.groups, p, params);
    assert!(
        report.vr() > 0.5,
        "vr = {} should be substantial",
        report.vr()
    );

    // Enforce with SPS; every sampled group must run at most ~sg trials.
    let mut rng = StdRng::seed_from_u64(99);
    let out = sps(&mut rng, &d.generalized, &d.groups, SpsConfig { p, params });
    assert!(out.stats.groups_sampled > 0);
    // Per-group check: recompute the sample budget.
    let m = d.groups.spec().m();
    let total_budget: f64 = d
        .groups
        .groups()
        .iter()
        .map(|g| {
            let sg = max_group_size(params, p, m, g.max_frequency());
            (g.len() as f64).min(sg.max(1.0)) + 2.0
        })
        .sum();
    assert!(
        (out.stats.sampled_records as f64)
            + (out.stats.input_records as f64 - out.stats.sampled_records as f64)
            >= 0.0
    );
    assert!(
        out.stats.sampled_records as f64 <= total_budget,
        "sampled {} exceeds the aggregate sg budget {total_budget}",
        out.stats.sampled_records
    );
}

#[test]
fn publication_size_matches_input_in_expectation() {
    let d = fixture();
    let params = PrivacyParams::new(0.3, 0.3);
    let mut rng = StdRng::seed_from_u64(3);
    let mut total = 0u64;
    let runs = 10;
    for _ in 0..runs {
        let out = sps(
            &mut rng,
            &d.generalized,
            &d.groups,
            SpsConfig { p: 0.5, params },
        );
        total += out.stats.output_records;
    }
    let avg = total as f64 / runs as f64;
    let expected = d.generalized.rows() as f64;
    assert!(
        (avg - expected).abs() < 0.02 * expected,
        "avg output {avg} vs input {expected}"
    );
}

#[test]
fn aggregate_reconstruction_unbiased_through_whole_pipeline() {
    // Theorem 5 end to end: reconstruct a large aggregate count from the
    // SPS publication; the mean over runs converges to the truth.
    let d = fixture();
    let params = PrivacyParams::new(0.3, 0.3);
    let p = 0.5;
    // Query: Gender = Male ∧ Income = >50K on the generalized table.
    let schema = d.generalized.schema();
    let male = schema
        .attribute(adult::attr::GENDER)
        .dictionary()
        .code("Male")
        .expect("gender survives generalization un-merged");
    let high = schema
        .attribute(adult::attr::INCOME)
        .dictionary()
        .code(">50K")
        .unwrap();
    let query = CountQuery::new(vec![(adult::attr::GENDER, male)], adult::attr::INCOME, high)
        .expect("valid count query");
    let truth = query.answer(&d.generalized) as f64;
    assert!(truth > 500.0, "need a large support for this test");
    let mut rng = StdRng::seed_from_u64(17);
    let runs = 40;
    let mut mean = 0.0;
    for _ in 0..runs {
        let out = sps(&mut rng, &d.generalized, &d.groups, SpsConfig { p, params });
        let view = GroupedView::from_perturbed_table(&d.groups, &out.table);
        mean += view.estimate(&query, p) / runs as f64;
    }
    assert!(
        relative_error(mean, truth) < 0.05,
        "mean estimate {mean} vs truth {truth}"
    );
}

#[test]
fn scan_and_grouped_estimates_agree_on_up_publication() {
    let d = fixture();
    let mut rng = StdRng::seed_from_u64(5);
    let spec = SaSpec::new(&d.generalized, adult::attr::INCOME);
    let published = uniform_perturb(&mut rng, &d.generalized, &spec, 0.4);
    let view = GroupedView::from_perturbed_table(&d.groups, &published);
    let schema = d.generalized.schema();
    for edu_code in 0..schema.attribute(0).domain_size() as u32 {
        let q = CountQuery::new(vec![(0, edu_code)], adult::attr::INCOME, 1)
            .expect("valid count query");
        let scan = estimate_by_scan(&published, &q, 0.4);
        let grouped = view.estimate(&q, 0.4);
        assert!(
            (scan - grouped).abs() < 1e-9,
            "strategies disagree on edu {edu_code}: {scan} vs {grouped}"
        );
    }
}

#[test]
fn degenerate_small_table_passes_through_sps_unsampled() {
    // A table small enough that every group is already private: SPS must
    // behave exactly like UP (no sampling).
    let t = adult::generate(AdultConfig {
        rows: 2_800,
        ..AdultConfig::default()
    });
    let spec = SaSpec::new(&t, adult::attr::INCOME);
    let groups = PersonalGroups::build(&t, spec);
    // Tiny groups (~1 record each): sg at f = 1 and p = 0.1 is well above 1.
    let params = PrivacyParams::new(0.1, 0.9);
    let mut rng = StdRng::seed_from_u64(31);
    let out = sps(&mut rng, &t, &groups, SpsConfig { p: 0.1, params });
    let report = check_groups(&groups, 0.1, params);
    if report.is_private() {
        assert_eq!(out.stats.groups_sampled, 0);
        assert_eq!(out.stats.output_records, t.rows() as u64);
    } else {
        assert!(out.stats.groups_sampled > 0);
    }
}
