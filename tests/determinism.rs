//! Determinism contract: every randomized pipeline stage is a pure function
//! of its seed. Two runs with the same `StdRng` seed must produce
//! byte-identical tables (compared through their CSV serialization), so
//! criterion numbers and figure reproductions stay comparable across PRs,
//! machines and runs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::groups::{PersonalGroups, SaSpec};
use rp_core::privacy::PrivacyParams;
use rp_core::sps::{sps, sps_histograms, uniform_perturb, up_histograms, SpsConfig};
use rp_datagen::{adult, census};
use rp_table::{write_csv, Table};

/// The table's canonical byte representation.
fn csv_bytes(table: &Table) -> Vec<u8> {
    let mut buffer = Vec::new();
    write_csv(table, &mut buffer).expect("in-memory write cannot fail");
    buffer
}

#[test]
fn datagen_is_a_pure_function_of_the_seed() {
    let config = adult::AdultConfig {
        rows: 5_000,
        seed: 42,
    };
    let a = csv_bytes(&adult::generate(config));
    let b = csv_bytes(&adult::generate(config));
    assert_eq!(a, b, "same ADULT seed must give byte-identical tables");

    let other = adult::generate(adult::AdultConfig {
        rows: 5_000,
        seed: 43,
    });
    assert_ne!(a, csv_bytes(&other), "different seeds must differ");

    let config = census::CensusConfig {
        rows: 8_000,
        seed: 7,
    };
    let c = csv_bytes(&census::generate(config));
    let d = csv_bytes(&census::generate(config));
    assert_eq!(c, d, "same CENSUS seed must give byte-identical tables");
}

#[test]
fn uniform_perturbation_is_deterministic_per_seed() {
    let table = adult::generate(adult::AdultConfig {
        rows: 4_000,
        seed: 1,
    });
    let spec = SaSpec::new(&table, 4);

    let mut rng = StdRng::seed_from_u64(99);
    let first = uniform_perturb(&mut rng, &table, &spec, 0.5);
    let mut rng = StdRng::seed_from_u64(99);
    let second = uniform_perturb(&mut rng, &table, &spec, 0.5);
    assert_eq!(csv_bytes(&first), csv_bytes(&second));

    let mut rng = StdRng::seed_from_u64(100);
    let third = uniform_perturb(&mut rng, &table, &spec, 0.5);
    assert_ne!(csv_bytes(&first), csv_bytes(&third));
}

#[test]
fn sps_is_deterministic_per_seed() {
    let table = adult::generate(adult::AdultConfig {
        rows: 6_000,
        seed: 2,
    });
    let spec = SaSpec::new(&table, 4);
    let groups = PersonalGroups::build(&table, spec);
    let config = SpsConfig {
        p: 0.5,
        params: PrivacyParams::new(0.3, 0.3),
    };

    let mut rng = StdRng::seed_from_u64(1234);
    let first = sps(&mut rng, &table, &groups, config);
    let mut rng = StdRng::seed_from_u64(1234);
    let second = sps(&mut rng, &table, &groups, config);
    assert_eq!(first.stats, second.stats, "run counters must match");
    assert_eq!(
        csv_bytes(&first.table),
        csv_bytes(&second.table),
        "same SPS seed must publish byte-identical tables"
    );
}

#[test]
fn histogram_level_paths_are_deterministic_per_seed() {
    let table = adult::generate(adult::AdultConfig {
        rows: 6_000,
        seed: 3,
    });
    let spec = SaSpec::new(&table, 4);
    let groups = PersonalGroups::build(&table, spec);
    let config = SpsConfig {
        p: 0.5,
        params: PrivacyParams::new(0.3, 0.3),
    };

    let mut rng = StdRng::seed_from_u64(5);
    let up_a = up_histograms(&mut rng, &groups, 0.5);
    let sps_a = sps_histograms(&mut rng, &groups, config);
    let mut rng = StdRng::seed_from_u64(5);
    let up_b = up_histograms(&mut rng, &groups, 0.5);
    let sps_b = sps_histograms(&mut rng, &groups, config);

    assert_eq!(up_a, up_b, "up_histograms must replay exactly");
    assert_eq!(sps_a, sps_b, "sps_histograms must replay exactly");
}
