//! Integration tests for the serving stack (`rp-engine`'s protocol /
//! service / server layers):
//!
//! * the wire protocol round-trips: `parse ∘ encode = id` over generated
//!   [`Request`]s and [`Response`]s (property test), rp/3 catalog verbs
//!   (`use`/`releases`/`reload`/`verb@release`), the rp/4 degradation
//!   surface (`error code=degraded`, the `degraded`/`faults` stats
//!   counters) and the rp/5 observability surface (`metrics`/`trace`)
//!   included;
//! * observability changes no response bytes: the same script produces
//!   byte-identical transcripts with the metrics registry enabled and
//!   disabled;
//! * stdio and TCP are the same protocol: N concurrent TCP clients
//!   running an interleaved request stream each receive bytes identical
//!   to the sequential stdio loop's transcript;
//! * the answer cache changes no response bytes — only the hit counters
//!   observable through `stats`;
//! * two catalog tenants served concurrently stay isolated: per-tenant
//!   transcripts are byte-identical to their stdio references and no
//!   session's queries touch the other tenant's cache.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rp_repro::engine::protocol::{
    ErrorCode, ReleaseEntry, ReleaseMeta, StatsSnapshot, WireAnswer, WireHistogram, WireTraceEvent,
};
use rp_repro::engine::{
    serve, serve_catalog, Catalog, Publisher, QueryService, Request, Response, Server,
    ServerConfig, ServiceConfig, WireQuery, WireRecord,
};
use rp_repro::table::{Attribute, Schema, TableBuilder};

// ---------------------------------------------------------------------------
// Generators: typed requests/responses from a seeded RNG. The vendored
// proptest draws the seed; the value is a pure function of it.
// ---------------------------------------------------------------------------

const COLUMNS: [&str; 4] = ["Job", "Disease", "Zip-Code", "Age_Band"];
const VALUES: [&str; 5] = ["eng", "flu", ">50K", "n/a", "v_7-x"];
/// Valid catalog release names (tokens without `@`).
const RELEASES: [&str; 4] = ["alpha", "beta", "adult-2015", "r_0"];

fn arb_release(rng: &mut StdRng) -> String {
    RELEASES[rng.gen_range(0..RELEASES.len())].to_string()
}

fn arb_condition(rng: &mut StdRng) -> (String, String) {
    (
        COLUMNS[rng.gen_range(0..COLUMNS.len())].to_string(),
        VALUES[rng.gen_range(0..VALUES.len())].to_string(),
    )
}

fn arb_wire_query(rng: &mut StdRng) -> WireQuery {
    let n = rng.gen_range(1..=4usize);
    WireQuery {
        conditions: (0..n).map(|_| arb_condition(rng)).collect(),
    }
}

/// Metric/trace names: protocol tokens over the obs label alphabet.
const METRIC_NAMES: [&str; 4] = [
    "serve.request",
    "wal.sync",
    "service.cache_lookup",
    "fault:x-1",
];

fn arb_metric_name(rng: &mut StdRng) -> String {
    METRIC_NAMES[rng.gen_range(0..METRIC_NAMES.len())].to_string()
}

fn arb_request(rng: &mut StdRng) -> Request {
    match rng.gen_range(0..14u32) {
        0 => Request::Ping,
        1 => Request::Quit,
        2 => Request::Info,
        3 => Request::Stats,
        4 => Request::Query(arb_wire_query(rng)),
        5 => Request::Flush,
        6 => {
            let n = rng.gen_range(1..=4usize);
            Request::Insert(WireRecord {
                fields: (0..n).map(|_| arb_condition(rng)).collect(),
            })
        }
        7 => Request::Use(arb_release(rng)),
        8 => Request::Releases,
        9 => Request::Reload(arb_release(rng)),
        10 => Request::At {
            release: arb_release(rng),
            // Only routable verbs can carry a qualifier; the parser
            // rejects `use@x`/`ping@x`, so the generator mirrors that.
            inner: Box::new(match rng.gen_range(0..5u32) {
                0 => Request::Query(arb_wire_query(rng)),
                1 => Request::Batch(
                    (0..rng.gen_range(1..=3usize))
                        .map(|_| arb_wire_query(rng))
                        .collect(),
                ),
                2 => Request::Insert(WireRecord {
                    fields: (0..rng.gen_range(1..=3usize))
                        .map(|_| arb_condition(rng))
                        .collect(),
                }),
                3 => Request::Flush,
                _ => Request::Info,
            }),
        },
        12 => Request::Metrics,
        13 => Request::Trace(if rng.gen_range(0..2u32) == 0 {
            None
        } else {
            Some(rng.gen_range(0..10_000u64))
        }),
        _ => {
            let n = rng.gen_range(1..=3usize);
            Request::Batch((0..n).map(|_| arb_wire_query(rng)).collect())
        }
    }
}

/// Finite floats across several magnitudes (the codec encodes with the
/// shortest round-trip `Display`, so any finite value must survive).
fn arb_f64(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0..4u32) {
        0 => 0.0,
        1 => rng.gen_range(0.0..1.0),
        2 => rng.gen_range(0.0..1.0e9),
        _ => f64::from(rng.gen_range(1..1_000_000u32)) / 977.0,
    }
}

fn arb_answer(rng: &mut StdRng) -> WireAnswer {
    WireAnswer {
        estimate: arb_f64(rng),
        support: rng.gen_range(0..1_000_000u64),
        observed: rng.gen_range(0..1_000_000u64),
        frequency: arb_f64(rng),
        ci: if rng.gen_range(0..2u32) == 0 {
            Some((arb_f64(rng), arb_f64(rng)))
        } else {
            None
        },
    }
}

fn arb_response(rng: &mut StdRng) -> Response {
    match rng.gen_range(0..15u32) {
        0 => Response::Hello {
            version: rng.gen_range(1..100u32),
            sa: COLUMNS[rng.gen_range(0..COLUMNS.len())].to_string(),
            records: rng.gen_range(0..10_000_000u64),
            groups: rng.gen_range(0..100_000u64),
            p: arb_f64(rng),
            release: if rng.gen_range(0..2u32) == 0 {
                Some(arb_release(rng))
            } else {
                None
            },
        },
        10 => Response::Using {
            release: arb_release(rng),
            sa: COLUMNS[rng.gen_range(0..COLUMNS.len())].to_string(),
            records: rng.gen_range(0..10_000_000u64),
            groups: rng.gen_range(0..100_000u64),
            p: arb_f64(rng),
        },
        11 => {
            let n = rng.gen_range(0..=3usize);
            Response::Releases(
                (0..n)
                    .map(|i| ReleaseEntry {
                        // Distinct names: a listing never repeats a tenant.
                        name: format!("{}-{i}", arb_release(rng)),
                        sa: COLUMNS[rng.gen_range(0..COLUMNS.len())].to_string(),
                        records: rng.gen_range(0..10_000_000u64),
                        groups: rng.gen_range(0..100_000u64),
                        live: rng.gen_range(0..2u32) == 0,
                    })
                    .collect(),
            )
        }
        12 => Response::Reloaded {
            release: arb_release(rng),
            records: rng.gen_range(0..10_000_000u64),
            groups: rng.gen_range(0..100_000u64),
        },
        1 => Response::Answer(arb_answer(rng)),
        2 => {
            let n = rng.gen_range(0..=3usize);
            Response::Batch((0..n).map(|_| arb_answer(rng)).collect())
        }
        3 => Response::Info {
            sa: COLUMNS[rng.gen_range(0..COLUMNS.len())].to_string(),
            records: rng.gen_range(0..10_000_000u64),
            groups: rng.gen_range(0..100_000u64),
            p: arb_f64(rng),
            release: if rng.gen_range(0..2u32) == 0 {
                Some(ReleaseMeta {
                    lambda: arb_f64(rng),
                    delta: arb_f64(rng),
                    seed: rng.gen_range(0..u64::MAX),
                })
            } else {
                None
            },
        },
        4 => Response::Stats(StatsSnapshot {
            requests: rng.gen_range(0..u64::MAX),
            answered: rng.gen_range(0..u64::MAX),
            errors: rng.gen_range(0..u64::MAX),
            cache_hits: rng.gen_range(0..u64::MAX),
            cache_misses: rng.gen_range(0..u64::MAX),
            sessions: rng.gen_range(0..u64::MAX),
            inserts: rng.gen_range(0..u64::MAX),
            degraded: rng.gen_range(0..u64::MAX),
            faults: rng.gen_range(0..u64::MAX),
        }),
        5 => Response::Pong,
        6 => Response::Bye,
        7 => Response::Inserted {
            group_size: rng.gen_range(0..u64::MAX),
            republished: rng.gen_range(0..2u32) == 0,
        },
        8 => Response::Flushed {
            events: rng.gen_range(0..u64::MAX),
        },
        13 => {
            let nc = rng.gen_range(0..=3usize);
            let nh = rng.gen_range(0..=3usize);
            Response::Metrics {
                counters: (0..nc)
                    .map(|i| {
                        (
                            format!("{}-{i}", arb_metric_name(rng)),
                            rng.gen_range(0..u64::MAX),
                        )
                    })
                    .collect(),
                histograms: (0..nh)
                    .map(|i| WireHistogram {
                        name: format!("{}-{i}", arb_metric_name(rng)),
                        count: rng.gen_range(0..u64::MAX),
                        p50: rng.gen_range(0..u64::MAX),
                        p90: rng.gen_range(0..u64::MAX),
                        p99: rng.gen_range(0..u64::MAX),
                        max: rng.gen_range(0..u64::MAX),
                        mean: arb_f64(rng),
                    })
                    .collect(),
            }
        }
        14 => {
            let n = rng.gen_range(0..=4usize);
            Response::Trace(
                (0..n)
                    .map(|_| WireTraceEvent {
                        seq: rng.gen_range(0..u64::MAX),
                        label: arb_metric_name(rng),
                    })
                    .collect(),
            )
        }
        _ => Response::Error {
            code: [
                ErrorCode::Parse,
                ErrorCode::UnknownCommand,
                ErrorCode::BadQuery,
                ErrorCode::Busy,
                ErrorCode::Internal,
                ErrorCode::ReadOnly,
                ErrorCode::UnknownRelease,
                ErrorCode::Degraded,
            ][rng.gen_range(0..8usize)],
            message: "query needs a condition on the SA column `Disease`".to_string(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse ∘ encode = id` over generated requests.
    #[test]
    fn request_parse_encode_is_identity(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let request = arb_request(&mut rng);
        let line = request.encode();
        let parsed = Request::parse(&line).expect("canonical line parses");
        prop_assert_eq!(parsed, Some(request));
    }

    /// `parse ∘ encode = id` over generated responses.
    #[test]
    fn response_parse_encode_is_identity(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let response = arb_response(&mut rng);
        let line = response.encode();
        let parsed = Response::parse(&line).expect("canonical line parses");
        prop_assert_eq!(parsed, response);
    }

    /// Encoding is canonical: re-encoding a parsed line reproduces it.
    #[test]
    fn request_encoding_is_idempotent(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let line = arb_request(&mut rng).encode();
        let reparsed = Request::parse(&line).unwrap().unwrap();
        prop_assert_eq!(reparsed.encode(), line);
    }
}

// ---------------------------------------------------------------------------
// Transport equivalence over a real publication.
// ---------------------------------------------------------------------------

fn fixture_service(cache_entries: usize) -> QueryService {
    fixture_service_with(cache_entries, 1800, 41)
}

fn fixture_service_with(cache_entries: usize, rows: u32, seed: u64) -> QueryService {
    let schema = Schema::new(vec![
        Attribute::new("Job", ["eng", "doc", "law"]),
        Attribute::new("City", ["rome", "oslo"]),
        Attribute::new("Disease", ["flu", "none"]),
    ]);
    let mut b = TableBuilder::new(schema);
    for i in 0..rows {
        b.push_codes(&[i % 3, (i / 3) % 2, (i / 6) % 2]).unwrap();
    }
    let publication = Publisher::new(b.build())
        .sa(2)
        .seed(seed)
        .publish()
        .expect("fixture publishes");
    QueryService::from_publication(&publication, ServiceConfig { cache_entries })
}

/// A deterministic request stream: queries (with a repeat for the cache),
/// a batch, structured errors of every class, info and ping — everything
/// except `stats`, whose counters legitimately depend on interleaving.
const SCRIPT: &[&str] = &[
    "info",
    "ping",
    "count Job=eng Disease=flu",
    "Disease=none Job=doc",
    "garbage",
    "count Job=eng",
    "count Nope=1 Disease=flu",
    "count Job=eng Job=doc Disease=flu",
    "batch Job=eng Disease=flu; City=oslo Disease=none",
    // Streaming verbs on a static artifact: deterministic `read-only`
    // errors on every transport.
    "insert Job=eng City=rome Disease=flu",
    "flush",
    "Disease=flu Job=eng",
    "quit",
];

/// The sequential stdio transcript of the script over a fresh service.
fn stdio_transcript(cache_entries: usize) -> (String, StatsSnapshot) {
    let service = fixture_service(cache_entries);
    let input = SCRIPT.join("\n") + "\n";
    let mut out = Vec::new();
    serve(&service, input.as_bytes(), &mut out).expect("in-memory serve cannot fail");
    (String::from_utf8(out).unwrap(), service.stats())
}

#[test]
fn concurrent_tcp_sessions_match_sequential_stdio_bytes() {
    const CLIENTS: usize = 4;
    let (reference, _) = stdio_transcript(1024);

    let service = Arc::new(fixture_service(1024));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default())
        .expect("bind an ephemeral port");
    let handle = server.spawn().expect("spawn server");
    let addr = handle.addr();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
                let mut writer = stream;
                let mut transcript = String::new();
                let read_line = |reader: &mut BufReader<TcpStream>, transcript: &mut String| {
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("read response");
                    transcript.push_str(&line);
                };
                read_line(&mut reader, &mut transcript); // HELLO banner
                                                         // One line at a time — send, then read the single response
                                                         // — so the N sessions genuinely interleave on the server.
                for request in SCRIPT {
                    writeln!(writer, "{request}").expect("send request");
                    writer.flush().expect("flush");
                    read_line(&mut reader, &mut transcript);
                }
                transcript
            })
        })
        .collect();

    for worker in workers {
        let transcript = worker.join().expect("client thread");
        assert_eq!(
            transcript, reference,
            "a TCP session diverged from the stdio transcript"
        );
    }
    handle.shutdown().expect("graceful shutdown");

    let stats = service.stats();
    assert_eq!(stats.sessions, CLIENTS as u64);
    assert_eq!(stats.requests, (SCRIPT.len() * CLIENTS) as u64);
    // 6 of the script lines are errors (unknown command, missing SA,
    // unknown column, duplicated column, and the two read-only streaming
    // verbs), on every session.
    assert_eq!(stats.errors, 6 * CLIENTS as u64);
    // Every session's repeated query hits the shared cache (its first
    // occurrence already populated it within the same session); the first
    // occurrences may race and each count a miss, so only the repeat is
    // guaranteed.
    // 3 single queries per session consult the cache (batches bypass it).
    assert_eq!(stats.cache_hits + stats.cache_misses, 3 * CLIENTS as u64);
    assert!(stats.cache_hits >= CLIENTS as u64, "{stats:?}");
}

#[test]
fn cache_changes_no_response_bytes_only_counters() {
    let (cached, cached_stats) = stdio_transcript(1024);
    let (uncached, uncached_stats) = stdio_transcript(0);
    assert_eq!(cached, uncached, "the answer cache altered response bytes");
    assert_eq!(cached_stats.cache_hits, 1, "{cached_stats:?}");
    assert_eq!(cached_stats.cache_misses, 2, "{cached_stats:?}");
    assert_eq!(uncached_stats.cache_hits, 0);
    assert_eq!(uncached_stats.cache_misses, 0);
    // Everything else agrees exactly.
    assert_eq!(cached_stats.requests, uncached_stats.requests);
    assert_eq!(cached_stats.answered, uncached_stats.answered);
    assert_eq!(cached_stats.errors, uncached_stats.errors);
}

#[test]
fn observability_changes_no_response_bytes() {
    // The zero-byte-impact contract of `rp_repro::engine::obs`: the
    // instrumented serving stack must produce byte-identical transcripts
    // whether the registry is recording or disabled. The registry is
    // process-global, so the flag is restored even on panic.
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            rp_repro::engine::obs::global().set_enabled(true);
        }
    }
    let (enabled, enabled_stats) = stdio_transcript(1024);
    let _restore = Restore;
    rp_repro::engine::obs::global().set_enabled(false);
    let (disabled, disabled_stats) = stdio_transcript(1024);
    assert_eq!(
        enabled, disabled,
        "observability instrumentation altered response bytes"
    );
    assert_eq!(enabled_stats.requests, disabled_stats.requests);
    assert_eq!(enabled_stats.answered, disabled_stats.answered);
    assert_eq!(enabled_stats.errors, disabled_stats.errors);
}

#[test]
fn metrics_and_trace_verbs_answer_canonical_lines() {
    // `metrics` and `trace` answered by a live service parse back to the
    // exact response (parse ∘ encode = id on real registry contents).
    let service = fixture_service(1024);
    let input = "ping\ncount Job=eng Disease=flu\nmetrics\ntrace 8\nquit\n";
    let mut out = Vec::new();
    serve(&service, input.as_bytes(), &mut out).expect("in-memory serve cannot fail");
    let text = String::from_utf8(out).unwrap();
    let metrics_line = text
        .lines()
        .find(|l| l.starts_with("metrics "))
        .expect("metrics response present");
    let parsed = Response::parse(metrics_line).expect("metrics line parses");
    assert_eq!(parsed.encode(), metrics_line, "metrics encoding canonical");
    let Response::Metrics { counters, .. } = parsed else {
        panic!("expected a metrics response: {metrics_line}");
    };
    // This service's own counters are deterministic regardless of what
    // other tests recorded into the shared registry.
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    // Counters are snapshotted before the `metrics` request itself is
    // accounted, so only the preceding ping + count are visible.
    assert_eq!(get("service.requests"), 2, "ping + count");
    assert_eq!(get("service.answered"), 2);
    let trace_line = text
        .lines()
        .find(|l| l.starts_with("trace "))
        .expect("trace response present");
    let parsed = Response::parse(trace_line).expect("trace line parses");
    assert_eq!(parsed.encode(), trace_line, "trace encoding canonical");
}

#[test]
fn every_script_response_parses_as_typed_protocol() {
    let (transcript, _) = stdio_transcript(1024);
    for line in transcript.lines() {
        let parsed = Response::parse(line);
        assert!(parsed.is_ok(), "unparseable response line `{line}`");
    }
}

// ---------------------------------------------------------------------------
// Multi-tenant isolation over TCP.
// ---------------------------------------------------------------------------

/// A two-tenant catalog: `alpha` (the default) and `beta` differ in size
/// and seed, so their answers to the same query differ observably. The
/// tenant service handles are returned for per-tenant cache accounting.
fn fixture_catalog() -> (Catalog, Arc<QueryService>, Arc<QueryService>) {
    let alpha = Arc::new(fixture_service_with(1024, 1800, 41));
    let beta = Arc::new(fixture_service_with(1024, 1200, 43));
    let catalog = Catalog::new("alpha").expect("valid default name");
    catalog
        .open("alpha", Arc::clone(&alpha))
        .expect("open alpha");
    catalog.open("beta", Arc::clone(&beta)).expect("open beta");
    (catalog, alpha, beta)
}

/// The default tenant's session: rp/2-era un-qualified verbs only.
const ALPHA_SCRIPT: &[&str] = &[
    "info",
    "count Job=eng Disease=flu",
    "count Job=eng Disease=flu",
    "releases",
    "count City=oslo Disease=none",
    "quit",
];

/// The second tenant's session: `use beta`, then the same queries.
const BETA_SCRIPT: &[&str] = &[
    "use beta",
    "info",
    "count Job=eng Disease=flu",
    "count Job=eng Disease=flu",
    "count City=oslo Disease=none",
    "quit",
];

/// The sequential stdio transcript of `script` over a fresh catalog.
fn catalog_stdio_transcript(script: &[&str]) -> String {
    let (catalog, _, _) = fixture_catalog();
    let input = script.join("\n") + "\n";
    let mut out = Vec::new();
    serve_catalog(&catalog, input.as_bytes(), &mut out).expect("in-memory serve cannot fail");
    String::from_utf8(out).unwrap()
}

#[test]
fn concurrent_tenants_get_isolated_byte_identical_transcripts() {
    let alpha_ref = catalog_stdio_transcript(ALPHA_SCRIPT);
    let beta_ref = catalog_stdio_transcript(BETA_SCRIPT);
    // The same queries answered from different releases: if routing or
    // caching ever leaked across tenants these references would agree.
    assert_ne!(alpha_ref, beta_ref, "tenants must answer differently");

    let (catalog, alpha, beta) = fixture_catalog();
    let server = Server::bind_catalog("127.0.0.1:0", Arc::new(catalog), ServerConfig::default())
        .expect("bind an ephemeral port");
    let handle = server.spawn().expect("spawn server");
    let addr = handle.addr();

    // Two clients per tenant, all interleaving line-at-a-time.
    let workers: Vec<_> = [ALPHA_SCRIPT, BETA_SCRIPT, ALPHA_SCRIPT, BETA_SCRIPT]
        .into_iter()
        .map(|script| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
                let mut writer = stream;
                let mut transcript = String::new();
                let read_line = |reader: &mut BufReader<TcpStream>| {
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("read response");
                    line
                };
                transcript.push_str(&read_line(&mut reader)); // HELLO banner
                for request in script {
                    writeln!(writer, "{request}").expect("send request");
                    writer.flush().expect("flush");
                    transcript.push_str(&read_line(&mut reader));
                }
                (script, transcript)
            })
        })
        .collect();

    for worker in workers {
        let (script, transcript) = worker.join().expect("client thread");
        let reference = if std::ptr::eq(script, ALPHA_SCRIPT) {
            &alpha_ref
        } else {
            &beta_ref
        };
        assert_eq!(
            &transcript, reference,
            "a tenant session diverged from its stdio reference"
        );
    }
    handle.shutdown().expect("graceful shutdown");

    // Per-tenant cache isolation: each tenant's counters account exactly
    // for its own sessions' three cache-consulting queries — the other
    // tenant's identical query lines contributed zero hits or misses.
    let alpha_stats = alpha.stats();
    let beta_stats = beta.stats();
    assert_eq!(
        alpha_stats.cache_hits + alpha_stats.cache_misses,
        6,
        "{alpha_stats:?}"
    );
    assert_eq!(
        beta_stats.cache_hits + beta_stats.cache_misses,
        6,
        "{beta_stats:?}"
    );
    assert!(alpha_stats.cache_hits >= 2, "{alpha_stats:?}");
    assert!(beta_stats.cache_hits >= 2, "{beta_stats:?}");
    // Session starts are charged to the default tenant (the banner's
    // release); `use beta` does not re-charge.
    assert_eq!(alpha_stats.sessions, 4);
    assert_eq!(beta_stats.sessions, 0);
}
