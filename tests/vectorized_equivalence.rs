//! Equivalence suites for the vectorized data path: the bitmap matching
//! kernel must agree with the row-at-a-time scan on arbitrary tables and
//! queries, sharded grouping must be invisible (identical output for every
//! shard and thread count), and the columnar SPS emission must reproduce
//! the row-at-a-time seed implementation byte for byte on the same seed.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rp_core::groups::{PersonalGroups, SaSpec};
use rp_core::perturb::UniformPerturbation;
use rp_core::privacy::{max_group_size, PrivacyParams};
use rp_core::sps::{sps, SpsConfig};
use rp_engine::Publisher;
use rp_stats::sampling::stochastic_round;
use rp_table::{
    group_by_hash, group_by_hash_sharded, group_by_sort, write_csv, Attribute, BitmapIndex,
    CountQuery, Pattern, Schema, Table, TableBuilder, Term,
};

/// A random categorical table over `arity` attributes with the given domain
/// sizes, filled from a seeded RNG.
fn random_table(seed: u64, rows: usize, domains: &[usize]) -> Table {
    let schema = Schema::new(
        domains
            .iter()
            .enumerate()
            .map(|(i, &d)| Attribute::with_anonymous_domain(format!("A{i}"), d))
            .collect(),
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TableBuilder::with_capacity(schema, rows);
    let mut codes = vec![0u32; domains.len()];
    for _ in 0..rows {
        for (c, &d) in codes.iter_mut().zip(domains) {
            *c = rng.gen_range(0..d as u32);
        }
        builder.push_codes(&codes).expect("codes in domain");
    }
    builder.build()
}

/// A random pattern over the table's attributes: each attribute is absent,
/// wildcarded, or pinned to a (possibly out-of-domain) code.
fn random_pattern(rng: &mut StdRng, domains: &[usize]) -> Pattern {
    let terms = domains
        .iter()
        .enumerate()
        .filter_map(|(attr, &d)| match rng.gen_range(0..4u32) {
            0 => None,
            1 => Some((attr, Term::Wildcard)),
            // Codes drawn past the domain exercise the no-match path.
            _ => Some((attr, Term::Value(rng.gen_range(0..(d as u32 + 2))))),
        })
        .collect();
    Pattern::new(terms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bitmap selection (AND of per-(attr, code) bitmaps) agrees with the
    /// row-at-a-time pattern scan on arbitrary tables and patterns.
    #[test]
    fn bitmap_select_matches_row_scan(seed in 0u64..5_000, rows in 0usize..300) {
        let domains = [2 + (seed % 5) as usize, 3, 2 + (seed % 3) as usize];
        let table = random_table(seed, rows, &domains);
        let index = BitmapIndex::build(&table);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
        for _ in 0..8 {
            let pattern = random_pattern(&mut rng, &domains);
            prop_assert_eq!(index.select(&pattern), pattern.select(&table));
            prop_assert_eq!(index.count(&pattern), pattern.count(&table));
        }
    }

    /// Bitmap count-query evaluation returns the same `(support, observed)`
    /// pair as the scan for random conjunctive queries.
    #[test]
    fn bitmap_queries_match_row_scan(seed in 0u64..5_000, rows in 0usize..300) {
        let domains = [3usize, 4, 3];
        let table = random_table(seed, rows, &domains);
        let index = BitmapIndex::build(&table);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A5A);
        for _ in 0..8 {
            let sa = rng.gen_range(0..domains.len());
            let mut na: Vec<(usize, u32)> = Vec::new();
            for (a, &domain) in domains.iter().enumerate() {
                if a != sa && rng.gen::<f64>() < 0.6 {
                    na.push((a, rng.gen_range(0..domain as u32)));
                }
            }
            let sa_value = rng.gen_range(0..domains[sa] as u32);
            let query = CountQuery::new(na, sa, sa_value).expect("valid count query");
            prop_assert_eq!(
                query.answer_with_support_indexed(&index),
                query.answer_with_support(&table)
            );
        }
    }

    /// Sharded grouping is purely an execution strategy: for every shard
    /// and thread count the result equals the unsharded group-by, and the
    /// sort- and hash-based strategies agree with each other.
    #[test]
    fn sharded_grouping_matches_k1(seed in 0u64..5_000, rows in 0usize..400) {
        let domains = [4usize, 3, 2, 5];
        let table = random_table(seed, rows, &domains);
        let attrs = [0usize, 1, 2];
        let reference = group_by_hash(&table, &attrs);
        prop_assert_eq!(&reference, &group_by_sort(&table, &attrs));
        for shards in [1usize, 2, 5, 16] {
            for threads in [1usize, 3] {
                prop_assert_eq!(
                    &reference,
                    &group_by_hash_sharded(&table, &attrs, shards, threads)
                );
            }
        }
    }

    /// Sharded `PersonalGroups` construction (grouping plus SA histograms)
    /// equals the paper's sort-based build for every shard/thread count.
    #[test]
    fn sharded_personal_groups_match_build(seed in 0u64..5_000, rows in 1usize..400) {
        let domains = [4usize, 3, 3];
        let table = random_table(seed, rows, &domains);
        let spec = SaSpec::new(&table, 2);
        let reference = PersonalGroups::build(&table, spec.clone());
        for shards in [1usize, 3, 8] {
            prop_assert_eq!(
                &reference,
                &PersonalGroups::build_sharded(&table, spec.clone(), shards, 2)
            );
        }
    }
}

/// The row-at-a-time SPS emission exactly as the seed implementation wrote
/// it (PR 2 state): one `push_codes` per within-threshold record, one
/// `push_codes_batch` per scaled (group, SA value) cell, drawing from the
/// shared samplers in the identical order. The columnar executor must
/// reproduce its output byte for byte.
fn reference_sps<R: Rng + ?Sized>(
    rng: &mut R,
    table: &Table,
    groups: &PersonalGroups,
    config: SpsConfig,
) -> Table {
    let spec = groups.spec();
    let op = UniformPerturbation::new(config.p, spec.m());
    let mut builder = TableBuilder::with_capacity(table.schema().clone(), table.rows());
    let arity = table.schema().arity();
    for group in groups.groups() {
        let size = group.len() as u64;
        let f_max = if group.is_empty() {
            0.0
        } else {
            group.max_frequency()
        };
        let sg = max_group_size(config.params, config.p, spec.m(), f_max);
        let mut row = vec![0u32; arity];
        for (i, &attr) in spec.na().iter().enumerate() {
            row[attr] = group.key[i];
        }
        if size as f64 <= sg {
            for &r in &group.rows {
                row[spec.sa()] = op.perturb_code(rng, table.code(r as usize, spec.sa()));
                builder.push_codes(&row).expect("template codes are valid");
            }
            continue;
        }
        let tau = sg / size as f64;
        let mut sample_hist: Vec<u64> = group
            .sa_hist
            .iter()
            .map(|&c| stochastic_round(rng, c as f64 * tau).min(c))
            .collect();
        let mut g1_size: u64 = sample_hist.iter().sum();
        if g1_size == 0 {
            let argmax = group
                .sa_hist
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .expect("non-empty histogram");
            sample_hist[argmax] = 1;
            g1_size = 1;
        }
        let perturbed_hist = op.perturb_histogram(rng, &sample_hist);
        let tau_prime = size as f64 / g1_size as f64;
        for (sa_code, &count) in perturbed_hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let copies: u64 = (0..count).map(|_| stochastic_round(rng, tau_prime)).sum();
            row[spec.sa()] = sa_code as u32;
            builder
                .push_codes_batch(&row, copies as usize)
                .expect("template codes are valid");
        }
    }
    builder.build()
}

fn csv_bytes(table: &Table) -> Vec<u8> {
    let mut buffer = Vec::new();
    write_csv(table, &mut buffer).expect("in-memory write cannot fail");
    buffer
}

#[test]
fn columnar_emission_is_byte_identical_to_seed_path() {
    for (seed, rows, domains) in [
        // Few, large personal groups: the sampled (scaled) path dominates.
        (11u64, 6_000usize, vec![3usize, 2, 2]),
        (12, 4_000, vec![2, 2, 5]),
        // Many small groups: the within-threshold path dominates.
        (13, 800, vec![6, 5, 8]),
    ] {
        let table = random_table(seed, rows, &domains);
        let sa = domains.len() - 1;
        let spec = SaSpec::new(&table, sa);
        let groups = PersonalGroups::build(&table, spec);
        let config = SpsConfig {
            p: 0.5,
            params: PrivacyParams::new(0.3, 0.3),
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let columnar = sps(&mut rng, &table, &groups, config);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let reference = reference_sps(&mut rng, &table, &groups, config);
        assert!(
            columnar.stats.groups_sampled > 0 || rows < 1_000,
            "fixture should exercise the sampled path (seed {seed})"
        );
        assert_eq!(
            csv_bytes(&columnar.table),
            csv_bytes(&reference),
            "columnar emission diverged from the seed path (seed {seed})"
        );
    }
}

#[test]
fn publication_is_identical_for_every_shard_count() {
    let table = random_table(21, 6_000, &[5, 3, 4]);
    let save = |shards: usize, threads: usize| {
        let publication = Publisher::new(table.clone())
            .sa(2)
            .seed(99)
            .parallelism(shards, threads)
            .publish()
            .expect("valid configuration");
        let mut buffer = Vec::new();
        publication.save(&mut buffer).expect("in-memory save");
        buffer
    };
    let reference = save(1, 1);
    for (shards, threads) in [(2, 1), (4, 4), (16, 3)] {
        assert_eq!(
            reference,
            save(shards, threads),
            "publication bytes changed at K={shards}, threads={threads}"
        );
    }
}

#[test]
fn engine_answers_are_identical_for_every_shard_count() {
    let table = random_table(31, 5_000, &[4, 4, 3]);
    let spec = SaSpec::new(&table, 2);
    let groups = PersonalGroups::build(&table, spec.clone());
    let queries: Vec<CountQuery> = (0..4u32)
        .map(|i| CountQuery::new(vec![(0, i % 4), (1, (i + 1) % 4)], 2, i % 3).unwrap())
        .collect();
    let reference: Vec<(u64, u64)> = {
        let view = rp_core::estimate::GroupedView::from_histograms(
            &groups,
            groups.groups().iter().map(|g| g.sa_hist.clone()).collect(),
        );
        queries
            .iter()
            .map(|q| view.support_and_observed(q))
            .collect()
    };
    for shards in [2usize, 8, 64] {
        let sharded = PersonalGroups::build_sharded(&table, spec.clone(), shards, 2);
        let view = rp_core::estimate::GroupedView::from_histograms_sharded(
            &sharded,
            sharded.groups().iter().map(|g| g.sa_hist.clone()).collect(),
            shards,
            2,
        );
        let answers: Vec<(u64, u64)> = queries
            .iter()
            .map(|q| view.support_and_observed(q))
            .collect();
        assert_eq!(reference, answers, "answers changed at K={shards}");
    }
}
