//! Property-based integration tests: the paper's theorems as proptest
//! invariants, exercised across randomized parameters and data.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::matrix::PerturbationMatrix;
use rp_core::mle::{reconstruct_histogram, reconstruct_histogram_via_inverse};
use rp_core::perturb::UniformPerturbation;
use rp_core::privacy::{
    lambda_to_omega, max_group_size, omega_to_lambda, reconstruction_error_bounds, PrivacyParams,
};
use rp_stats::bounds::{chernoff_lower, chernoff_upper};

/// Strategy: a valid retention probability bounded away from 0 and 1.
fn retention() -> impl Strategy<Value = f64> {
    0.05f64..0.95
}

/// Strategy: an SA domain size.
fn domain() -> impl Strategy<Value = usize> {
    2usize..40
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// P · P⁻¹ = I for every valid (p, m).
    #[test]
    fn matrix_inverse_identity(p in retention(), m in domain()) {
        let mat = PerturbationMatrix::new(p, m);
        for j in 0..m {
            for i in 0..m {
                let prod: f64 = (0..m).map(|k| mat.entry(j, k) * mat.inverse_entry(k, i)).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((prod - expect).abs() < 1e-10);
            }
        }
    }

    /// Lemma 2: the closed-form MLE equals the matrix-inverse MLE, and the
    /// reconstruction preserves the simplex sum.
    #[test]
    fn mle_closed_form_equals_inverse(
        p in retention(),
        hist in proptest::collection::vec(0u64..500, 2..20)
    ) {
        prop_assume!(hist.iter().sum::<u64>() > 0);
        let a = reconstruct_histogram(&hist, p);
        let b = reconstruct_histogram_via_inverse(&hist, p);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
        let sum: f64 = a.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    /// Perturbation preserves record count at the histogram level.
    #[test]
    fn perturbation_preserves_total(
        p in retention(),
        hist in proptest::collection::vec(0u64..200, 2..12),
        seed in any::<u64>()
    ) {
        let op = UniformPerturbation::new(p, hist.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let out = op.perturb_histogram(&mut rng, &hist);
        prop_assert_eq!(out.iter().sum::<u64>(), hist.iter().sum::<u64>());
    }

    /// Theorem 2 round trip: λ → ω → λ is the identity.
    #[test]
    fn bound_conversion_round_trip(
        p in retention(),
        m in domain(),
        f in 0.01f64..1.0,
        lambda in 0.01f64..3.0
    ) {
        let omega = lambda_to_omega(lambda, p, m, f);
        let back = omega_to_lambda(omega, p, m, f);
        prop_assert!((back - lambda).abs() < 1e-9 * lambda.max(1.0));
    }

    /// Equation 10 is the exact boundary: a group of size ⌊sg⌋ is private,
    /// one of size ⌈sg⌉ + 1 is not (via the same closed form the test
    /// uses).
    #[test]
    fn sg_is_the_privacy_boundary(
        p in retention(),
        m in domain(),
        f in 0.05f64..1.0,
        lambda in 0.05f64..1.0,
        delta in 0.05f64..0.95
    ) {
        let params = PrivacyParams::new(lambda, delta);
        let sg = max_group_size(params, p, m, f);
        prop_assume!(sg.is_finite() && sg < 1e12);
        let below = sg.floor() as u64;
        let above = sg.ceil() as u64 + 1;
        if below > 0 {
            prop_assert!(rp_core::privacy::group_is_private(params, p, m, f, below));
        }
        prop_assert!(!rp_core::privacy::group_is_private(params, p, m, f, above));
    }

    /// Corollary 3 at the sg boundary: within the Corollary-4 range the
    /// lower-tail Chernoff bound evaluated at |S| = sg equals δ.
    #[test]
    fn chernoff_bound_at_boundary_equals_delta(
        p in retention(),
        m in domain(),
        f in 0.05f64..1.0,
        delta in 0.05f64..0.95
    ) {
        let lambda = 0.2;
        let omega = lambda_to_omega(lambda, p, m, f);
        prop_assume!(omega <= 1.0);
        let params = PrivacyParams::new(lambda, delta);
        let sg = max_group_size(params, p, m, f);
        prop_assume!((1.0..1e9).contains(&sg));
        let mu = sg * (f * p + (1.0 - p) / m as f64);
        let l = chernoff_lower(omega, mu);
        prop_assert!((l - delta).abs() < 1e-6, "L = {l}, delta = {delta}");
    }

    /// Monotonicity of the Chernoff bounds in µ.
    #[test]
    fn chernoff_bounds_monotone_in_mu(
        omega in 0.01f64..1.0,
        mu in 1.0f64..1e6
    ) {
        prop_assert!(chernoff_upper(omega, mu * 2.0) <= chernoff_upper(omega, mu));
        prop_assert!(chernoff_lower(omega, mu * 2.0) <= chernoff_lower(omega, mu));
    }

    /// The reconstruction-error bounds weaken as the support shrinks —
    /// the law-of-large-numbers gap SPS exploits.
    #[test]
    fn smaller_support_weakens_bounds(
        p in retention(),
        m in domain(),
        f in 0.05f64..1.0
    ) {
        let (u_small, l_small) = reconstruction_error_bounds(0.3, 50, f, p, m);
        let (u_large, l_large) = reconstruction_error_bounds(0.3, 5_000, f, p, m);
        prop_assert!(u_small >= u_large);
        match (l_small, l_large) {
            (Some(ls), Some(ll)) => prop_assert!(ls >= ll),
            (None, None) => {}
            other => prop_assert!(false, "inconsistent omega range: {other:?}"),
        }
    }
}
