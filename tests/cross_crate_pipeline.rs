//! Integration across rp-dp, rp-datagen and rp-experiments: the Section-2
//! attack against the Section-5 defence, plus experiment-runner coherence.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::estimate::GroupedView;
use rp_core::privacy::PrivacyParams;
use rp_core::sps::{sps_histograms, up_histograms, SpsConfig};
use rp_dp::attack::RatioAttack;
use rp_dp::mechanism::{LaplaceMechanism, Sensitivity};
use rp_experiments::config::{defaults, PreparedDataset};
use rp_experiments::table1::example1_query;
use rp_experiments::{error, table1, tables45, violation};

#[test]
fn dp_attack_discloses_while_sps_publication_does_not_expose_the_cell() {
    // The paper's core contrast in one test. On the same synthetic ADULT:
    // (1) two differentially-private answers at eps = 0.5 pin down the
    //     Example-1 confidence;
    // (2) the SPS publication makes the *personal* reconstruction of the
    //     Example-1 cell unreliable across runs.
    let dataset = PreparedDataset::adult_small(20_000);
    let raw = &dataset.raw;

    // (1) Output perturbation discloses.
    let attack = RatioAttack::new(example1_query(raw));
    let mech = LaplaceMechanism::new(0.5, Sensitivity::count_query_batch(2));
    let mut rng = StdRng::seed_from_u64(1);
    let outcome = attack.run(raw, &mech, 10, &mut rng);
    assert!(
        (outcome.confidence.mean - outcome.true_confidence).abs() < 0.05,
        "DP at eps=0.5 should disclose: Conf' = {} vs {}",
        outcome.confidence.mean,
        outcome.true_confidence
    );

    // (2) Data perturbation with SPS defends: the per-run reconstruction
    //     of the victim's generalized personal group has large spread.
    let params = PrivacyParams::new(0.3, 0.3);
    let p = defaults::P;
    // Locate the generalized personal group containing the Example-1 cell.
    let gen_query = dataset.generalization.translate_query(&example1_query(raw));
    let mut estimates = Vec::new();
    for _ in 0..20 {
        let hists = sps_histograms(&mut rng, &dataset.groups, SpsConfig { p, params });
        let view = GroupedView::from_histograms(&dataset.groups, hists);
        let (support, observed) = view.support_and_observed(&gen_query);
        assert!(support > 0);
        let est = rp_core::mle::reconstruct_frequency(observed, support, p, 2);
        estimates.push(est);
    }
    let mean: f64 = estimates.iter().sum::<f64>() / estimates.len() as f64;
    let var: f64 = estimates
        .iter()
        .map(|e| (e - mean) * (e - mean))
        .sum::<f64>()
        / estimates.len() as f64;
    // The reconstruction is noisy run to run; an adversary holding ONE
    // published instance cannot certify a small relative error. (The DP
    // attack above had SE < 0.02; this spread is an order larger in
    // relative terms, on a generalized group that is itself an aggregate
    // over merged education/occupation values.)
    assert!(
        var.sqrt() > 0.01,
        "sd = {} should be noticeable",
        var.sqrt()
    );
}

#[test]
fn violation_and_error_runners_share_the_same_dataset_view() {
    let d = PreparedDataset::adult_small(12_000);
    let v = violation::run_all(&d);
    // 4 runs, not 2: the `sps >= 0.8 * up` spread check below needs the
    // Monte-Carlo means tight enough that one lucky SPS draw cannot mask
    // the true ordering.
    let protocol = error::ErrorProtocol {
        pool_size: 100,
        runs: 4,
        seed: 5,
    };
    let e = error::run_all(&d, protocol);
    assert_eq!(v.len(), 3);
    assert_eq!(e.len(), 3);
    for sweep in &v {
        assert_eq!(sweep.dataset, d.name);
        assert_eq!(sweep.points.len(), 5);
    }
    for sweep in &e {
        assert_eq!(sweep.dataset, d.name);
        // SPS never beats UP by more than Monte-Carlo slack anywhere.
        for pt in &sweep.points {
            assert!(pt.sps > 0.0 && pt.up > 0.0);
            assert!(pt.sps >= pt.up * 0.8, "{pt:?}");
        }
    }
}

#[test]
fn table1_and_tables45_run_on_the_same_fixture() {
    let d = PreparedDataset::adult_small(12_000);
    let t1 = table1::run(&d.raw, &[0.5], 10, 3);
    assert!((t1.true_confidence - 0.8383).abs() < 1e-3);
    let impact = tables45::run(&d);
    assert_eq!(impact.records, 12_000);
    assert_eq!(impact.groups_before, 2240);
    assert!(impact.groups_after < impact.groups_before);
}

#[test]
fn up_and_sps_histograms_have_consistent_group_counts() {
    let d = PreparedDataset::adult_small(10_000);
    let mut rng = StdRng::seed_from_u64(11);
    let params = PrivacyParams::new(0.3, 0.3);
    let up = up_histograms(&mut rng, &d.groups, 0.5);
    let sp = sps_histograms(&mut rng, &d.groups, SpsConfig { p: 0.5, params });
    assert_eq!(up.len(), d.groups.len());
    assert_eq!(sp.len(), d.groups.len());
    // UP preserves each group's size exactly; SPS in expectation.
    for (g, h) in d.groups.groups().iter().zip(&up) {
        assert_eq!(g.len() as u64, h.iter().sum::<u64>());
    }
}
