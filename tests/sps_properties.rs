//! Property-based tests for the SPS algorithm itself (Section 5): the
//! perturbation matrix is a proper transition matrix, the Sampling step
//! respects the Equation-10 budget `sg` in every group, groups within the
//! budget pass through unsampled and intact, and the Scaling step restores
//! the original group size in expectation.

use std::collections::HashMap;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rp_core::groups::{PersonalGroups, SaSpec};
use rp_core::matrix::PerturbationMatrix;
use rp_core::privacy::{max_group_size, PrivacyParams};
use rp_core::sps::{sps, SpsConfig};
use rp_table::{Attribute, Schema, Table, TableBuilder};

/// A random categorical table: two public attributes and one SA column,
/// dense enough that personal groups span the interesting size range.
fn random_table(seed: u64, rows: usize, na1: usize, na2: usize, m: usize) -> Table {
    let schema = Schema::new(vec![
        Attribute::with_anonymous_domain("A", na1),
        Attribute::with_anonymous_domain("B", na2),
        Attribute::with_anonymous_domain("SA", m),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = TableBuilder::new(schema);
    for _ in 0..rows {
        let a = rng.gen_range(0..na1 as u32);
        let b = rng.gen_range(0..na2 as u32);
        // Correlate SA with A so group histograms are skewed (varied f_max).
        let sa = if rng.gen::<f64>() < 0.6 {
            (a as usize % m) as u32
        } else {
            rng.gen_range(0..m as u32)
        };
        builder.push_codes(&[a, b, sa]).expect("codes in domain");
    }
    builder.build()
}

/// Per-group published sizes, keyed by the group's NA codes.
fn sizes_by_key(groups: &PersonalGroups) -> HashMap<Vec<u32>, u64> {
    groups
        .groups()
        .iter()
        .map(|g| (g.key.clone(), g.len() as u64))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Equation 3: `P` is a transition matrix — entries in [0, 1], every
    /// column (outgoing probabilities of one true value) sums to 1, and by
    /// the uniform structure every row does too. Its inverse also has unit
    /// row/column sums (`P·1 = 1` implies `P⁻¹·1 = 1`), which is what makes
    /// the MLE reconstruction preserve the simplex.
    #[test]
    fn perturbation_matrix_is_doubly_stochastic(p in 0.05f64..0.95, m in 2usize..40) {
        let mat = PerturbationMatrix::new(p, m);
        for i in 0..m {
            let mut col = 0.0;
            let mut row = 0.0;
            let mut inv_col = 0.0;
            for j in 0..m {
                let e = mat.entry(j, i);
                prop_assert!((0.0..=1.0).contains(&e), "entry {e} out of [0,1]");
                col += e;
                row += mat.entry(i, j);
                inv_col += mat.inverse_entry(j, i);
            }
            prop_assert!((col - 1.0).abs() < 1e-10, "column {i} sums to {col}");
            prop_assert!((row - 1.0).abs() < 1e-10, "row {i} sums to {row}");
            prop_assert!((inv_col - 1.0).abs() < 1e-9, "inverse column {i} sums to {inv_col}");
        }
    }

    /// The Sampling step: a group is sampled if and only if it exceeds the
    /// Equation-10 threshold `sg(f_max)`, and the records drawn across all
    /// sampled groups stay within the per-group budget (`sg` plus the
    /// stochastic-rounding slack of at most one record per SA value).
    #[test]
    fn sampling_respects_the_eq10_budget(
        seed in any::<u64>(),
        p in 0.2f64..0.8,
        rows in 800usize..3000,
        m in 2usize..5
    ) {
        let table = random_table(seed, rows, 6, 4, m);
        let spec = SaSpec::new(&table, 2);
        let groups = PersonalGroups::build(&table, spec);
        let params = PrivacyParams::new(0.3, 0.3);

        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
        let out = sps(&mut rng, &table, &groups, SpsConfig { p, params });

        let mut expect_sampled = 0usize;
        let mut budget = 0.0f64;
        for g in groups.groups() {
            let sg = max_group_size(params, p, m, g.max_frequency());
            if g.len() as f64 > sg {
                expect_sampled += 1;
                // Per-cell stochastic rounding can exceed c·τ by < 1.
                budget += sg + m as f64;
            }
        }
        prop_assert_eq!(out.stats.groups_sampled, expect_sampled);
        prop_assert!(
            (out.stats.sampled_records as f64) <= budget + 1e-9,
            "sampled {} records, budget {budget}",
            out.stats.sampled_records
        );
        prop_assert_eq!(out.stats.groups, groups.len());
        prop_assert_eq!(out.stats.input_records, rows as u64);
    }

    /// Groups at or under `sg` take the no-sampling path: every record is
    /// perturbed in place, so the published group has exactly the original
    /// size (perturbation only rewrites the SA column).
    #[test]
    fn compliant_groups_pass_through_with_exact_size(
        seed in any::<u64>(),
        p in 0.2f64..0.8,
        rows in 800usize..2500
    ) {
        let m = 3;
        let table = random_table(seed, rows, 5, 5, m);
        let spec = SaSpec::new(&table, 2);
        let groups = PersonalGroups::build(&table, spec);
        let params = PrivacyParams::new(0.3, 0.3);

        let mut rng = StdRng::seed_from_u64(seed ^ 0x5CA1E);
        let out = sps(&mut rng, &table, &groups, SpsConfig { p, params });
        let out_spec = SaSpec::new(&out.table, 2);
        let out_sizes = sizes_by_key(&PersonalGroups::build(&out.table, out_spec));

        for g in groups.groups() {
            let sg = max_group_size(params, p, m, g.max_frequency());
            if g.len() as f64 <= sg {
                let published = out_sizes.get(&g.key).copied().unwrap_or(0);
                prop_assert_eq!(
                    published,
                    g.len() as u64,
                    "compliant group {:?} changed size",
                    g.key
                );
            }
        }
    }
}

/// The Scaling step: for a single oversized group, the mean published size
/// across independent seeded runs equals the original size (`E[g*₂] = |g|`
/// — the sample of `~sg` records is blown back up by `τ' = |g|/|g₁|`).
#[test]
fn scaling_restores_group_size_in_expectation() {
    let m = 3;
    let size = 600u64;
    let schema = Schema::new(vec![
        Attribute::with_anonymous_domain("A", 1),
        Attribute::with_anonymous_domain("SA", m),
    ]);
    let mut builder = TableBuilder::new(schema);
    for (code, count) in [(0u32, 300u64), (1, 200), (2, 100)] {
        for _ in 0..count {
            builder.push_codes(&[0, code]).expect("codes in domain");
        }
    }
    let table = builder.build();
    let spec = SaSpec::new(&table, 1);
    let groups = PersonalGroups::build(&table, spec);
    assert_eq!(groups.len(), 1);

    let p = 0.5;
    let params = PrivacyParams::new(0.3, 0.3);
    let sg = max_group_size(params, p, m, 0.5);
    assert!(
        sg < size as f64,
        "fixture must exceed sg = {sg} or the test exercises nothing"
    );

    let runs = 40;
    let mut total = 0u64;
    for seed in 0..runs {
        let mut rng = StdRng::seed_from_u64(seed);
        let out = sps(&mut rng, &table, &groups, SpsConfig { p, params });
        assert_eq!(out.stats.groups_sampled, 1);
        total += out.stats.output_records;
    }
    let mean = total as f64 / runs as f64;
    let tolerance = size as f64 * 0.02;
    assert!(
        (mean - size as f64).abs() < tolerance,
        "mean published size {mean} drifted from {size} (tolerance {tolerance})"
    );
}
