//! Integration tests for the extension modules: alternatives, audit,
//! incremental publication, variance/CI, Anatomy, the DP histogram and the
//! CSV round trip through the whole pipeline.

use std::io::Cursor;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_core::audit::audit;
use rp_core::groups::{PersonalGroups, SaSpec};
use rp_core::incremental::{GroupStatus, IncrementalPublisher};
use rp_core::privacy::{check_groups, PrivacyParams};
use rp_core::sps::{sps, SpsConfig};
use rp_core::variance::{confidence_interval, reconstruction_se};
use rp_dp::histogram::DpHistogram;
use rp_experiments::config::PreparedDataset;
use rp_table::{read_csv, write_csv, CountQuery};

#[test]
fn csv_round_trip_through_publication_pipeline() {
    // Generate → publish with SPS → write CSV → read back → the published
    // table survives intact and stays interpretable.
    let d = PreparedDataset::adult_small(8_000);
    let params = PrivacyParams::new(0.3, 0.3);
    let mut rng = StdRng::seed_from_u64(1);
    let out = sps(
        &mut rng,
        &d.generalized,
        &d.groups,
        SpsConfig { p: 0.5, params },
    );
    let mut buffer = Vec::new();
    write_csv(&out.table, &mut buffer).unwrap();
    let back = read_csv(Cursor::new(&buffer)).unwrap();
    assert_eq!(back.rows(), out.table.rows());
    assert_eq!(back.schema().arity(), 5);
    // Same value multiset per column (dictionaries may re-order codes).
    for attr in 0..5 {
        let mut a: Vec<&str> = (0..out.table.rows())
            .map(|r| out.table.decode_row(r).unwrap()[attr])
            .collect();
        let mut b: Vec<&str> = (0..back.rows())
            .map(|r| back.decode_row(r).unwrap()[attr])
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "column {attr} changed across the round trip");
    }
}

#[test]
fn audit_agrees_with_check_groups() {
    let d = PreparedDataset::adult_small(15_000);
    let params = PrivacyParams::new(0.3, 0.3);
    let a = audit(&d.groups, 0.5, params, 8);
    let report = check_groups(&d.groups, 0.5, params);
    assert_eq!(a.report, report);
    assert!(a.offenders.len() <= 8);
    // Offenders are genuinely the worst by excess factor.
    for w in a.offenders.windows(2) {
        assert!(w[0].excess_factor >= w[1].excess_factor);
    }
    assert!(a.expected_trial_fraction > 0.0 && a.expected_trial_fraction <= 1.0);
}

#[test]
fn incremental_publisher_matches_batch_semantics() {
    // Feeding a table record by record produces the same raw group
    // structure as the batch grouping.
    let d = PreparedDataset::adult_small(6_000);
    let params = PrivacyParams::new(0.3, 0.3);
    let spec = SaSpec::new(&d.generalized, d.sa);
    let mut publisher = IncrementalPublisher::new(0.5, spec.m(), params);
    let mut rng = StdRng::seed_from_u64(2);
    for row in 0..d.generalized.rows() {
        let key: Vec<u32> = spec
            .na()
            .iter()
            .map(|&a| d.generalized.code(row, a))
            .collect();
        let _ = publisher.insert(&mut rng, &key, d.generalized.code(row, spec.sa()));
    }
    let batch = PersonalGroups::build(&d.generalized, spec);
    assert_eq!(publisher.group_count(), batch.len());
    for g in batch.groups() {
        let live = publisher.group(&g.key).expect("group exists");
        assert_eq!(live.raw_hist, g.sa_hist, "raw histogram mismatch");
    }
    // Flagged status must agree with the batch report.
    let report = check_groups(&batch, 0.5, params);
    for (g, verdict) in batch.groups().iter().zip(&report.verdicts) {
        let live = publisher.group(&g.key).unwrap();
        let expect = if verdict.violates {
            GroupStatus::NeedsResampling
        } else {
            GroupStatus::Compliant
        };
        assert_eq!(live.status, expect, "group {:?}", g.key);
    }
}

#[test]
fn confidence_intervals_scale_with_group_size() {
    let d = PreparedDataset::adult_small(15_000);
    // The biggest and smallest non-trivial groups.
    let mut sizes: Vec<(usize, u64)> = d
        .groups
        .groups()
        .iter()
        .enumerate()
        .map(|(i, g)| (i, g.len() as u64))
        .collect();
    sizes.sort_by_key(|&(_, n)| n);
    let (small_n, big_n) = (sizes[0].1.max(1), sizes.last().unwrap().1);
    let se_small = reconstruction_se(0.5, small_n, 0.5, 2);
    let se_big = reconstruction_se(0.5, big_n, 0.5, 2);
    assert!(se_small > se_big);
    let ci = confidence_interval(0.5, big_n, 0.5, 2, 0.95);
    assert!(ci.half_width() < 0.2, "big-group CI should be tight");
}

#[test]
fn dp_histogram_and_reconstruction_answer_the_same_query() {
    // Cross-paradigm sanity: both publishing paths estimate the same
    // large-support count to within a few percent.
    let d = PreparedDataset::adult_small(15_000);
    let schema = d.generalized.schema();
    let male = schema.attribute(3).dictionary().code("Male").unwrap();
    let high = schema.attribute(4).dictionary().code(">50K").unwrap();
    let query = CountQuery::new(vec![(3, male)], 4, high).expect("valid count query");
    let truth = query.answer(&d.generalized) as f64;
    let mut rng = StdRng::seed_from_u64(3);
    // DP histogram path.
    let release = DpHistogram::release(&mut rng, &d.generalized, &[0, 1, 2, 3, 4], 1.0);
    let dp_answer = release.answer(&query);
    assert!(
        (dp_answer - truth).abs() / truth < 0.05,
        "dp {dp_answer} vs {truth}"
    );
    // Data-perturbation path (UP + MLE), averaged over a few runs.
    let mut mean = 0.0;
    let runs = 30;
    for _ in 0..runs {
        let view = rp_core::estimate::GroupedView::from_histograms(
            &d.groups,
            rp_core::sps::up_histograms(&mut rng, &d.groups, 0.5),
        );
        mean += view.estimate(&query, 0.5) / runs as f64;
    }
    assert!(
        (mean - truth).abs() / truth < 0.05,
        "recon {mean} vs {truth}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Anatomy invariants across random SA compositions: buckets partition
    /// the records, satisfy distinct l-diversity, and the SA marginal
    /// estimator is exact.
    #[test]
    fn anatomy_invariants(
        seed in any::<u64>(),
        l in 2usize..4,
        bulk in 60u64..200
    ) {
        // Compose counts that always satisfy strict l-eligibility:
        // four SA values with counts within a factor of two of each other.
        let mut rng = StdRng::seed_from_u64(seed);
        let counts: Vec<u64> = (0..4)
            .map(|_| bulk + rand::Rng::gen_range(&mut rng, 0..bulk / 2))
            .collect();
        let total: u64 = counts.iter().sum();
        prop_assume!(counts.iter().all(|&c| c * l as u64 <= total));
        let schema = rp_table::Schema::new(vec![
            rp_table::Attribute::with_anonymous_domain("G", 3),
            rp_table::Attribute::with_anonymous_domain("SA", 4),
        ]);
        let mut b = rp_table::TableBuilder::new(schema);
        for (code, &c) in counts.iter().enumerate() {
            for i in 0..c {
                b.push_codes(&[(i % 3) as u32, code as u32]).unwrap();
            }
        }
        let t = b.build();
        let a = rp_anonymize::AnatomizedTable::build(&t, 1, l).unwrap();
        prop_assert!(a.is_l_diverse());
        let bucket_total: u64 = (0..a.bucket_count())
            .map(|bk| a.bucket_histogram(bk as u32).iter().sum::<u64>())
            .sum();
        prop_assert_eq!(bucket_total, total);
        for sa in 0..4u32 {
            let q = CountQuery::new(vec![], 1, sa).expect("valid count query");
            let truth = q.answer(&t) as f64;
            prop_assert!((a.estimate(&t, &q) - truth).abs() < 1e-6);
        }
    }
}
