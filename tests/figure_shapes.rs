//! The paper's qualitative claims as a single CI gate, at reduced scale:
//! every trend, ordering and crossover the evaluation section reports must
//! hold on the synthetic fixtures. EXPERIMENTS.md records the paper-scale
//! numbers; this file keeps the shapes from regressing.

use rp_experiments::config::{defaults, PreparedDataset};
use rp_experiments::error::{self, ErrorProtocol};
use rp_experiments::violation::{self, SweepAxis};
use rp_experiments::{figure1, table1, table2};

fn protocol() -> ErrorProtocol {
    ErrorProtocol {
        pool_size: 200,
        runs: 3,
        seed: 2015,
    }
}

#[test]
fn table1_shape_disclosure_grows_as_epsilon_grows() {
    // Conf′ converges to Conf and utility improves as ε rises.
    let table = rp_datagen::adult::generate(rp_datagen::AdultConfig {
        rows: 12_000,
        ..rp_datagen::AdultConfig::default()
    });
    let t1 = table1::run(&table, &[0.01, 0.1, 0.5], 10, 99);
    let conf_err: Vec<f64> = t1
        .columns
        .iter()
        .map(|c| (c.outcome.confidence.mean - t1.true_confidence).abs())
        .collect();
    assert!(
        conf_err[2] < 0.02,
        "eps = 0.5 must disclose: |Conf' − Conf| = {}",
        conf_err[2]
    );
    assert!(
        conf_err[2] < conf_err[0],
        "disclosure must sharpen with eps: {conf_err:?}"
    );
    let rel_err: Vec<f64> = t1
        .columns
        .iter()
        .map(|c| c.outcome.base_relative_error.mean)
        .collect();
    assert!(
        rel_err[0] > rel_err[1] && rel_err[1] > rel_err[2],
        "utility must improve with eps: {rel_err:?}"
    );
}

#[test]
fn table2_shape_indicator_monotone_in_b_and_x() {
    let grid = table2::run();
    // Rows: growing b worsens nothing downward; columns: growing x helps.
    for row in &grid {
        for w in row.windows(2) {
            assert!(
                w[0].indicator <= w[1].indicator,
                "indicator must grow as x falls"
            );
        }
    }
    for (prev, row) in grid.iter().zip(grid.iter().skip(1)) {
        for (above, cell) in prev.iter().zip(row) {
            assert!(
                cell.indicator >= above.indicator,
                "indicator must grow with b"
            );
        }
    }
}

#[test]
fn figure1_shape_sg_monotone() {
    for panel in figure1::run() {
        // Decreasing in f along each curve; decreasing in p across curves.
        for curve in &panel.curves {
            for w in curve.points.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
        for pair in panel.curves.windows(2) {
            for (a, b) in pair[0].points.iter().zip(&pair[1].points) {
                assert!(
                    a.1 >= b.1,
                    "larger p must shrink sg: {a:?} vs {b:?} in {}",
                    panel.label
                );
            }
        }
    }
}

#[test]
fn figure2_shape_adult_violations() {
    let d = PreparedDataset::adult_small(15_000);
    let sweeps = violation::run_all(&d);
    for s in &sweeps {
        // All three sweeps are non-decreasing (p, λ, δ all tighten).
        for w in s.points.windows(2) {
            assert!(
                w[1].vg >= w[0].vg - 1e-12,
                "vg must not fall along {:?}: {:?}",
                s.axis,
                s.points
            );
        }
        // Record coverage always dominates group coverage.
        for pt in &s.points {
            assert!(pt.vr >= pt.vg - 1e-12, "vr < vg at {pt:?}");
        }
    }
}

#[test]
fn figure3_shape_sps_premium_and_up_noise() {
    let d = PreparedDataset::adult_small(15_000);
    let p_sweep = error::sweep(&d, SweepAxis::P, &defaults::P_SWEEP, protocol());
    // UP error decreases in p (monotone trend end-to-end).
    assert!(
        p_sweep.points.first().unwrap().up > p_sweep.points.last().unwrap().up,
        "{:?}",
        p_sweep.points
    );
    // SPS never beats UP beyond noise at the default and stricter settings.
    let l_sweep = error::sweep(&d, SweepAxis::Lambda, &[0.3, 0.5], protocol());
    for pt in &l_sweep.points {
        assert!(pt.sps >= pt.up * 0.9, "SPS beats UP implausibly: {pt:?}");
    }
    // The premium grows as λ tightens the criterion.
    assert!(
        l_sweep.points[1].sps - l_sweep.points[1].up
            >= l_sweep.points[0].sps - l_sweep.points[0].up - 0.02,
        "{:?}",
        l_sweep.points
    );
}

#[test]
fn figure4_5_shape_census_contrast() {
    // CENSUS at reduced size: far fewer violations than ADULT at the same
    // defaults (large m, small f) and a tiny SPS premium.
    let adult = PreparedDataset::adult_small(15_000);
    let census = PreparedDataset::census(30_000);
    let av = violation::sweep(&adult, SweepAxis::P, &[defaults::P]).points[0];
    let cv = violation::sweep(&census, SweepAxis::P, &[defaults::P]).points[0];
    assert!(
        cv.vr < av.vr,
        "CENSUS must violate less than ADULT: {cv:?} vs {av:?}"
    );
    let ce = error::sweep(&census, SweepAxis::P, &[defaults::P], protocol()).points[0];
    let ae = error::sweep(&adult, SweepAxis::P, &[defaults::P], protocol()).points[0];
    let census_premium = (ce.sps - ce.up) / ce.up;
    let adult_premium = (ae.sps - ae.up) / ae.up;
    assert!(
        census_premium < adult_premium + 0.05,
        "CENSUS premium {census_premium} should undercut ADULT's {adult_premium}"
    );
}
